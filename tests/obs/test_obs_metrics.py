"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

import math

import pytest

from repro import obs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disabled,
    metrics_enabled,
)


class TestCounter:
    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.snapshot() == {"type": "counter", "value": 6}

    def test_disabled_suppresses(self):
        c = Counter("c")
        with disabled():
            c.inc(100)
        assert c.value == 0
        assert metrics_enabled()


class TestGauge:
    def test_set_add_read(self):
        g = Gauge("g")
        g.set(3.0)
        g.add(2.0)
        assert g.read() == 5.0

    def test_lazy_fn_consulted_at_read(self):
        box = {"v": 7}
        g = Gauge("g", fn=lambda: box["v"])
        box["v"] = 11
        assert g.read() == 11.0
        assert g.snapshot() == {"type": "gauge", "value": 11.0}


class TestHistogram:
    def test_empty(self):
        h = Histogram("h")
        assert h.snapshot() == {"type": "histogram", "count": 0}
        assert h.percentile(50) == 0.0

    def test_single_sample_percentiles_exact(self):
        h = Histogram("h")
        h.record(0.25)
        # Clamping to [vmin, vmax] makes single-sample histograms exact.
        for p in (1, 50, 95, 99, 100):
            assert h.percentile(p) == 0.25

    def test_percentile_ordering_and_accuracy(self):
        h = Histogram("h")
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s uniform
        for v in values:
            h.record(v)
        p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
        assert p50 <= p95 <= p99 <= h.vmax
        # Quarter-octave buckets: mid-bucket estimate within ~9 % of truth.
        assert p50 == pytest.approx(0.5, rel=0.10)
        assert p95 == pytest.approx(0.95, rel=0.10)
        assert p99 == pytest.approx(0.99, rel=0.10)
        assert h.count == 1000
        assert h.mean == pytest.approx(sum(values) / 1000)
        assert h.vmin == 0.001 and h.vmax == 1.0

    def test_out_of_range_values_clamped_not_lost(self):
        h = Histogram("h")
        h.record(1e-12)  # below the first bound
        h.record(1e6)  # above the last bound (overflow bucket)
        assert h.count == 2
        assert h.vmin == 1e-12 and h.vmax == 1e6
        assert h.percentile(1) >= h.vmin
        assert h.percentile(99) <= h.vmax

    def test_bounds_are_geometric(self):
        bounds = Histogram.BOUNDS
        ratio = 2.0 ** 0.25
        for a, b in zip(bounds, bounds[1:]):
            assert b / a == pytest.approx(ratio)

    def test_disabled_suppresses(self):
        h = Histogram("h")
        with disabled():
            h.record(1.0)
        assert h.count == 0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(3)
        reg.histogram("lat").record(0.5)
        snap = reg.snapshot()
        assert snap["ops"] == {"type": "counter", "value": 3}
        assert snap["lat"]["count"] == 1

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        c = reg.counter("ops")
        h = reg.histogram("lat")
        c.inc(9)
        h.record(1.0)
        reg.reset()
        # Same objects, zeroed: import-time handles stay valid.
        assert reg.counter("ops") is c and c.value == 0
        assert reg.histogram("lat") is h and h.count == 0
        assert h.vmin == math.inf
        c.inc()
        assert reg.snapshot()["ops"]["value"] == 1

    def test_gauge_fn_rebinds_latest_provider(self):
        reg = MetricsRegistry()
        reg.gauge("depth", fn=lambda: 1)
        g = reg.gauge("depth", fn=lambda: 2)
        assert g.read() == 2.0


class TestModuleSingleton:
    def test_singleton_identity(self):
        assert obs.get_registry() is obs.registry

    def test_global_disable_restored(self):
        assert obs.metrics_enabled()
        obs.set_enabled(False)
        try:
            c = obs.registry.counter("test.module.singleton")
            c.inc()
            assert c.value == 0
        finally:
            obs.set_enabled(True)
