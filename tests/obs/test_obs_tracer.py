"""Tests for repro.obs.tracer: span nesting, JSONL export, no-op mode."""

import json
import threading

from repro.obs.tracer import Tracer, _NULL_SPAN


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer(enabled=False)
        s1 = t.span("a")
        s2 = t.span("b", key="val")
        assert s1 is s2 is _NULL_SPAN
        with s1:
            s1.set(ignored=True)
        assert t.spans() == []

    def test_tracer_off_by_default(self):
        assert not Tracer().enabled


class TestNesting:
    def test_parent_child_depth(self):
        t = Tracer(enabled=True)
        with t.span("outer") as outer:
            with t.span("inner"):
                pass
            outer.set(step=3)
        spans = {s.name: s for s in t.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].depth == 0
        assert spans["inner"].depth == 1
        assert spans["outer"].attrs == {"step": 3}
        # Children complete (and are recorded) before their parents.
        assert [s.name for s in t.spans()] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        t = Tracer(enabled=True)
        with t.span("root"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        spans = {s.name: s for s in t.spans()}
        assert spans["a"].parent_id == spans["root"].span_id
        assert spans["b"].parent_id == spans["root"].span_id
        assert spans["a"].depth == spans["b"].depth == 1

    def test_duration_and_ordering(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                pass
        spans = {s.name: s for s in t.spans()}
        assert 0.0 <= spans["inner"].duration <= spans["outer"].duration
        assert spans["outer"].start <= spans["inner"].start

    def test_threads_have_independent_stacks(self):
        t = Tracer(enabled=True)

        def work():
            with t.span("child-thread"):
                pass

        with t.span("main"):
            th = threading.Thread(target=work, name="worker")
            th.start()
            th.join()
        spans = {s.name: s for s in t.spans()}
        # The worker's span must not adopt main's span as parent.
        assert spans["child-thread"].parent_id is None
        assert spans["child-thread"].thread == "worker"
        assert spans["main"].thread != "worker"


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        t = Tracer(enabled=True)
        with t.span("op", component="sim"):
            pass
        lines = t.to_jsonl().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["name"] == "op"
        assert rec["attrs"] == {"component": "sim"}
        assert rec["duration"] >= 0.0

        path = tmp_path / "trace.jsonl"
        assert t.export_jsonl(path) == 1
        assert json.loads(path.read_text().splitlines()[0])["name"] == "op"

    def test_clear(self):
        t = Tracer(enabled=True)
        with t.span("x"):
            pass
        t.clear()
        assert t.spans() == []
        assert t.to_jsonl() == ""
