"""Tests for the @profiled decorator and the timed context manager."""

import pytest

from repro.obs.metrics import MetricsRegistry, disabled
from repro.obs.profile import profiled, timed


class TestProfiled:
    def test_records_each_call(self):
        reg = MetricsRegistry()

        @profiled("my.op.seconds", registry=reg)
        def op(x):
            return x * 2

        assert op(3) == 6
        assert op(4) == 8
        hist = reg.histogram("my.op.seconds")
        assert hist.count == 2
        assert op.__wrapped_histogram__ is hist

    def test_default_name_from_qualname(self):
        reg = MetricsRegistry()

        @profiled(registry=reg)
        def named():
            pass

        named()
        assert named.__wrapped_histogram__.name.endswith("named.seconds")
        assert named.__wrapped_histogram__.name.startswith(__name__)

    def test_records_on_exception(self):
        reg = MetricsRegistry()

        @profiled("boom.seconds", registry=reg)
        def boom():
            raise ValueError("x")

        with pytest.raises(ValueError):
            boom()
        assert reg.histogram("boom.seconds").count == 1

    def test_disabled_skips_timing(self):
        reg = MetricsRegistry()

        @profiled("quiet.seconds", registry=reg)
        def quiet():
            return 1

        with disabled():
            assert quiet() == 1
        assert reg.histogram("quiet.seconds").count == 0


class TestTimed:
    def test_records_block(self):
        reg = MetricsRegistry()
        hist = reg.histogram("block.seconds")
        with timed(hist):
            pass
        assert hist.count == 1
        assert hist.vmax >= 0.0
