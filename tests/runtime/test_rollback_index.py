"""Regression: coordinated rollback must restore the spatial index too.

SynchronizedStaging.restore previously reached into ``srv.store`` and rolled
back only the object stores; every server's SpatialIndex kept entries for
versions written after the snapshot (stale metadata) and lost entries for
versions the snapshot re-added. These tests pin the fixed behaviour through
the whole service path: snapshot -> more writes -> restore.
"""

import numpy as np
import pytest

from repro.core import WorkflowStaging
from repro.descriptors import ObjectDescriptor
from repro.errors import StagingError
from repro.runtime.staging_service import SynchronizedStaging

from tests.conftest import make_payload


@pytest.fixture
def service(group):
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True), poll_timeout=0.05, max_wait=3.0
    )
    svc.register("sim")
    svc.register("ana")
    return svc


def fdesc(domain, version):
    return ObjectDescriptor("field", version, domain.bbox)


def assert_index_matches_store(service):
    for srv in service.group.servers:
        assert srv.index.names() == sorted({n for n, _v in srv.store.keys()})
        for name in srv.index.names():
            assert srv.index.versions(name) == srv.store.versions(name)
        assert srv.index.nbytes() == srv.store.nbytes


class TestCoordinatedRollbackIndex:
    def test_restore_drops_stale_index_entries(self, service, domain):
        d0 = fdesc(domain, 0)
        service.put("sim", d0, make_payload(d0), 0)
        snap = service.snapshot()

        # Writes after the snapshot must vanish from *both* layers on restore.
        for v in (1, 2):
            d = fdesc(domain, v)
            service.put("sim", d, make_payload(d), v)
        service.restore(snap)

        for srv in service.group.servers:
            if srv.store.versions("field"):
                assert srv.index.versions("field") == [0]
        assert_index_matches_store(service)

    def test_restore_readds_evicted_index_entries(self, service, domain):
        d0 = fdesc(domain, 0)
        service.put("sim", d0, make_payload(d0), 0)
        snap = service.snapshot()

        for srvv in service.group.servers:
            srvv.evict("field", 0)
        service.restore(snap)

        # The restored version is queryable again through the index.
        assert_index_matches_store(service)
        r = service.get_blocking("ana", d0, 0)
        assert np.array_equal(r.data, make_payload(d0))

    def test_restore_to_empty_start(self, service, domain):
        snap = service.snapshot()  # nothing written yet
        d0 = fdesc(domain, 0)
        service.put("sim", d0, make_payload(d0), 0)
        service.restore(snap)
        for srv in service.group.servers:
            assert srv.store.versions("field") == []
            assert srv.index.versions("field") == []
            assert len(srv.index) == 0

    def test_restore_rejects_mismatched_server_count(self, service):
        with pytest.raises(StagingError):
            service.restore({"servers": [], "frontier": {}})
