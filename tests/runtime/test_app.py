"""Tests for application components (specs, determinism, stats)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.geometry import Domain
from repro.runtime.app import ComponentSpec, synthetic_field, hash_stable


class TestSyntheticField:
    def test_deterministic(self):
        a = synthetic_field("rho", 3, (8, 8))
        b = synthetic_field("rho", 3, (8, 8))
        assert np.array_equal(a, b)

    def test_step_dependent(self):
        assert not np.array_equal(
            synthetic_field("rho", 1, (8, 8)), synthetic_field("rho", 2, (8, 8))
        )

    def test_name_dependent(self):
        assert not np.array_equal(
            synthetic_field("rho", 1, (8, 8)), synthetic_field("temp", 1, (8, 8))
        )

    def test_shape(self):
        assert synthetic_field("x", 0, (4, 6, 2)).shape == (4, 6, 2)


class TestHashStable:
    def test_stable_known_value(self):
        # FNV-1a of "a" must never change across runs/versions.
        assert hash_stable("a") == hash_stable("a")
        assert hash_stable("a") != hash_stable("b")


class TestComponentSpec:
    def _spec(self, **kw):
        base = dict(
            name="sim",
            kind="producer",
            nranks=4,
            num_steps=10,
            checkpoint_period=4,
            variables=["x"],
            domain=Domain((8, 8)),
        )
        base.update(kw)
        return ComponentSpec(**base)

    def test_valid(self):
        spec = self._spec()
        assert spec.subset_fraction == 1.0
        assert not spec.replicated

    def test_rejects_bad_kind(self):
        with pytest.raises(ConfigError):
            self._spec(kind="observer")

    def test_rejects_bad_steps(self):
        with pytest.raises(ConfigError):
            self._spec(num_steps=0)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            self._spec(checkpoint_period=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            self._spec(subset_fraction=0.0)
        with pytest.raises(ConfigError):
            self._spec(subset_fraction=1.2)

    def test_rejects_no_variables(self):
        with pytest.raises(ConfigError):
            self._spec(variables=[])
