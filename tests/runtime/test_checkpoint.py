"""Tests for checkpoint capture and restore."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.runtime.checkpoint import Checkpoint, CheckpointStore, CheckpointTier


class TestSaveRestore:
    def test_roundtrip(self):
        store = CheckpointStore()
        state = {"step": 3, "results": [1, 2, 3]}
        chk = store.save("sim", 3, state)
        assert chk.load_state() == state

    def test_deep_copy_isolation(self):
        store = CheckpointStore()
        state = {"step": 0, "arr": np.zeros(4), "nested": {"xs": [1]}}
        store.save("sim", 0, state)
        state["arr"][:] = 9
        state["nested"]["xs"].append(2)
        restored = store.latest("sim").load_state()
        assert np.all(restored["arr"] == 0)
        assert restored["nested"]["xs"] == [1]

    def test_load_state_fresh_objects(self):
        store = CheckpointStore()
        store.save("sim", 0, {"xs": []})
        a = store.latest("sim").load_state()
        b = store.latest("sim").load_state()
        a["xs"].append(1)
        assert b["xs"] == []

    def test_counters_monotonic(self):
        store = CheckpointStore()
        c0 = store.save("sim", 0, {})
        c1 = store.save("sim", 4, {})
        assert (c0.counter, c1.counter) == (0, 1)

    def test_counters_per_component(self):
        store = CheckpointStore()
        store.save("sim", 0, {})
        c = store.save("ana", 0, {})
        assert c.counter == 0

    def test_unpicklable_state_rejected(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError):
            store.save("sim", 0, {"bad": lambda: None})


class TestRetention:
    def test_latest(self):
        store = CheckpointStore()
        store.save("sim", 0, {"v": 0})
        store.save("sim", 4, {"v": 1})
        assert store.latest("sim").load_state() == {"v": 1}

    def test_latest_missing(self):
        assert CheckpointStore().latest("nope") is None

    def test_get_by_counter(self):
        store = CheckpointStore()
        store.save("sim", 0, {"v": 0})
        store.save("sim", 4, {"v": 1})
        assert store.get("sim", 0).load_state() == {"v": 0}

    def test_get_missing_counter(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError):
            store.get("sim", 3)

    def test_keep_last(self):
        store = CheckpointStore(keep_last=2)
        for i in range(5):
            store.save("sim", i, {"v": i})
        assert store.count("sim") == 2
        assert store.latest("sim").load_state() == {"v": 4}
        with pytest.raises(CheckpointError):
            store.get("sim", 0)

    def test_keep_last_validation(self):
        with pytest.raises(CheckpointError):
            CheckpointStore(keep_last=0)

    def test_bytes_written_accumulates(self):
        store = CheckpointStore()
        store.save("sim", 0, {"v": list(range(100))})
        store.save("ana", 0, {"v": 1})
        assert store.bytes_written > 0
        assert store.components() == ["ana", "sim"]

    def test_tier_recorded(self):
        store = CheckpointStore()
        chk = store.save("sim", 0, {}, tier=CheckpointTier.NODE_LOCAL)
        assert chk.tier is CheckpointTier.NODE_LOCAL
