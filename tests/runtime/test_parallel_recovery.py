"""Differential tests: parallel recovery is byte-identical to serial.

The recovery engine (PR "parallel recovery") parallelises three paths —
partitioned replay, concurrent per-server restore, and pipelined/batched
rebuild — each behind a ``parallel`` flag that preserves the serial seed
path exactly. These tests prove the equivalence the design claims:

* a partitioned replay script serves every per-variable request stream the
  exact events the serial global-order script would, for *any* interleaving
  that respects per-name order (the only order the consistency argument
  needs);
* restoring a CoW snapshot chain with the per-server fan-out lands on the
  same bytes as the serial compose + restore, across random epoch
  boundaries;
* a pipelined, batch-decoded rebuild repopulates a replacement server with
  the same bytes as the serial record-at-a-time rebuild, under random
  fault plans;
* the two satellite bug fixes hold: reconstructed shards are digest-
  verified before anything lands on a replacement (a corrupt survivor
  cannot be laundered through a rebuild), and degraded-read shard fetches
  ride the retry/backoff loop (a transiently corrupted read burns a retry
  instead of surfacing as an erasure or an error).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WorkflowStaging
from repro.core.event_queue import EventQueue
from repro.core.events import EventKind
from repro.descriptors import ObjectDescriptor
from repro.errors import ReplayError
from repro.faults import FaultPlan, inject_faults
from repro.geometry import Domain
from repro.obs import registry as _obs
from repro.runtime import FailurePlan, ThreadedWorkflow
from repro.runtime.staging_service import SynchronizedStaging
from repro.staging import (
    ProtectionConfig,
    RetryPolicy,
    StagingClient,
    StagingGroup,
)
from repro.staging.resilience import rebuild_server
from repro.workloads import coupled_specs

from tests.conftest import make_payload
from tests.staging.test_store_index_invariant import check_lockstep

pytestmark = pytest.mark.integration

DOMAIN = Domain((16, 16, 8))
NAMES = ("u", "v", "w")
FAST_RETRY = RetryPolicy(base_backoff=0.001, max_backoff=0.004)


def desc_for(name: str, version: int) -> ObjectDescriptor:
    return ObjectDescriptor(name, version, DOMAIN.bbox)


# --------------------------------------------------------------------- replay


def build_queue(tokens: list[int]) -> EventQueue:
    """Token-driven event log: 0-2 put NAMES[t], 3-5 get NAMES[t-3], 6 chk."""
    q = EventQueue("ana")
    versions = {n: -1 for n in NAMES}
    for step, tok in enumerate(tokens):
        if tok == 6:
            q.record_checkpoint(step, durable=True)
        elif tok < 3:
            name = NAMES[tok]
            versions[name] += 1
            q.record_data(
                EventKind.PUT, desc_for(name, versions[name]), f"p{step}", step
            )
        else:
            name = NAMES[tok - 3]
            if versions[name] >= 0:
                q.record_data(
                    EventKind.GET, desc_for(name, versions[name]), f"g{step}", step
                )
    return q


class TestPartitionedReplayDifferential:
    """Partitioned scripts serve the exact events serial scripts would."""

    @settings(max_examples=60, deadline=None)
    @given(
        tokens=st.lists(st.integers(min_value=0, max_value=6), max_size=40),
        data=st.data(),
    )
    def test_any_per_name_order_matches_serial_script(self, tokens, data):
        q = build_queue(tokens)
        serial = q.build_replay_script()
        part = q.build_replay_script(partitioned=True)
        assert part.remaining == serial.remaining

        # The serial script defines, per variable, the event stream replay
        # must re-observe. Drain it in strict global order.
        serial_by_name: dict[str, list] = {}
        while not serial.exhausted:
            ev = serial.advance()
            serial_by_name.setdefault(ev.desc.name, []).append(ev)

        # Consume the partitioned script in a random interleaving that only
        # respects per-name order — the partition invariant — and check every
        # request is served the event the serial order assigned it.
        pending = {n: list(evs) for n, evs in serial_by_name.items()}
        while any(pending.values()):
            name = data.draw(
                st.sampled_from(sorted(n for n, evs in pending.items() if evs))
            )
            want = pending[name].pop(0)
            assert part.expected_event(want.desc) == want
            assert part.consume(want.desc) == want
        assert part.exhausted
        assert part.remaining == 0

    @settings(max_examples=30, deadline=None)
    @given(tokens=st.lists(st.integers(min_value=0, max_value=6), max_size=40))
    def test_partition_names_cover_script(self, tokens):
        q = build_queue(tokens)
        serial = q.build_replay_script()
        part = q.build_replay_script(partitioned=True)
        assert sorted(part.partition_names()) == sorted(
            {ev.desc.name for ev in serial.events}
        )

    def test_cannot_partition_partially_consumed_script(self):
        q = build_queue([0, 0, 3])
        script = q.build_replay_script()
        script.advance()
        with pytest.raises(ReplayError):
            script.enable_partitioning()

    def test_partitioned_request_for_unknown_name_raises(self):
        q = build_queue([0])
        script = q.build_replay_script(partitioned=True)
        with pytest.raises(ReplayError):
            script.expected_event(desc_for("nope", 0))


class TestWorkflowReplayDifferential:
    """End-to-end: partitioned replay keeps runs read-stable vs serial."""

    def test_failure_recovery_consistent_serial_and_parallel(self):
        specs = coupled_specs(num_steps=12, domain=Domain((8, 8, 4)))
        reference = ThreadedWorkflow(specs, "ds", parallel=False).run()
        runs = {}
        for parallel in (False, True):
            runs[parallel] = ThreadedWorkflow(
                specs,
                "uncoordinated",
                failures=[FailurePlan("analytic", 5), FailurePlan("simulation", 8)],
                parallel=parallel,
            ).run()
            runs[parallel].verify_against(reference)  # raises on divergence
        assert (
            runs[True].component_stats["analytic"].rollbacks
            == runs[False].component_stats["analytic"].rollbacks
        )


# -------------------------------------------------------------------- restore


def run_restore_workload(parallel: bool, epochs: list[int]) -> dict:
    """Put versions in bursts split by snapshot epochs; roll back twice.

    ``epochs`` gives the number of puts per name in each inter-snapshot
    burst, so random draws move the CoW chain's delta boundaries around.
    Returns the digests read back after restoring to the last and then the
    first snapshot.
    """
    group = StagingGroup.create(DOMAIN, num_servers=4, parallel=parallel)
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=False),
        poll_timeout=0.02,
        max_wait=20.0,
        max_ahead=100,  # the pinned consumer below must not throttle puts
        parallel=parallel,
    )
    svc.register("sim")
    svc.register("ana")
    for name in NAMES:
        # A declared consumer that never reads pins every version in
        # staging (retention is frontier-driven), so restores can be
        # byte-checked against the full put history.
        svc.declare_coupling(name, "ana")
    version = {n: 0 for n in NAMES}
    snaps = []
    for burst in epochs:
        snaps.append(svc.snapshot())
        for _ in range(burst):
            for name in NAMES:
                d = desc_for(name, version[name])
                svc.put("sim", d, make_payload(d), step=version[name])
                version[name] += 1
    out: dict[tuple[str, int, str], str] = {}
    for which, snap_i in (("last", len(snaps) - 1), ("first", 0)):
        svc.restore(snaps[snap_i])
        for srv in svc.group.servers:
            check_lockstep(srv)
        live = sum(epochs[:snap_i])
        reader = StagingClient(svc.group)  # exact-version reads
        for name in NAMES:
            for v in range(live):
                d = desc_for(name, v)
                got = reader.get(d)
                expect = make_payload(d)
                assert np.array_equal(got, expect), (name, v, which)
                out[(name, v, which)] = True
        out[("count", snap_i, which)] = str(
            sum(s.store.object_count for s in svc.group.servers)
        )
    svc.shutdown()
    return out


class TestRestoreDifferential:
    @settings(max_examples=6, deadline=None)
    @given(
        epochs=st.lists(
            st.integers(min_value=0, max_value=3), min_size=2, max_size=4
        )
    )
    def test_parallel_restore_matches_serial_across_epochs(self, epochs):
        assert run_restore_workload(False, epochs) == run_restore_workload(
            True, epochs
        )

    def test_parallel_restore_fans_out_per_server(self):
        before = _obs.counter("recovery.restore.parallel_servers").value
        run_restore_workload(True, [2, 2])
        assert _obs.counter("recovery.restore.parallel_servers").value > before


# -------------------------------------------------------------------- rebuild


def seeded_protected_group(
    versions: int, mode: str = "rs", parallel: bool = False
) -> tuple[StagingGroup, StagingClient]:
    cfg = (
        ProtectionConfig(mode="rs", parity=2)
        if mode == "rs"
        else ProtectionConfig(mode="replication", replicas=1)
    )
    group = StagingGroup.create(
        DOMAIN, num_servers=4, parallel=parallel, protection=cfg, retry=FAST_RETRY
    )
    client = StagingClient(group)
    for name in ("a", "b"):
        for v in range(versions):
            client.put(desc_for(name, v), make_payload(desc_for(name, v)))
    return group, client


def rebuild_and_read(
    versions: int, lost: int, mode: str, parallel: bool, batch_size: int
) -> dict:
    group, client = seeded_protected_group(versions, mode=mode)
    rebuilt = rebuild_server(
        group, lost, parallel=parallel, batch_size=batch_size
    )
    assert group.health.state(lost) == "up"
    # Read everything back through the replacement only: drop protection so
    # the raw geometric path serves, and byte-compare against the source.
    group.drop_protection()
    out: dict = {"rebuilt": rebuilt}
    for name in ("a", "b"):
        for v in range(versions):
            got = client.get(desc_for(name, v))
            expect = make_payload(desc_for(name, v))
            assert np.array_equal(got, expect), (name, v, parallel)
            out[(name, v)] = True
    srv = group.servers[lost]
    out["fragments"] = srv.store.object_count
    out["payload_bytes"] = srv.nbytes
    out["protection_bytes"] = srv.protection_nbytes
    return out


class TestRebuildDifferential:
    @settings(max_examples=6, deadline=None)
    @given(
        lost=st.integers(min_value=0, max_value=3),
        versions=st.integers(min_value=1, max_value=5),
        mode=st.sampled_from(["rs", "replication"]),
    )
    def test_pipelined_rebuild_matches_serial(self, lost, versions, mode):
        serial = rebuild_and_read(versions, lost, mode, parallel=False, batch_size=2)
        pipelined = rebuild_and_read(versions, lost, mode, parallel=True, batch_size=2)
        assert serial == pipelined

    def test_pipelined_rebuild_runs_in_batches(self):
        group, _client = seeded_protected_group(4)  # 8 records -> 4 batches
        before = _obs.counter("recovery.rebuild.batches").value
        rebuild_server(group, 1, parallel=True, batch_size=2)
        assert _obs.counter("recovery.rebuild.batches").value - before == 4

    def test_degraded_survivors_still_rebuild_identically(self):
        # A second server crashing mid-rebuild (first op against it) forces
        # reconstruction through parity on both paths. Rebuild the crashed
        # survivor afterwards too, then byte-check the whole group raw.
        for parallel in (False, True):
            group, client = seeded_protected_group(3)
            inject_faults(group, [FaultPlan(server=2, op=0, kind="crash")])
            rebuild_server(group, 0, parallel=parallel, batch_size=2)
            rebuild_server(group, 2, parallel=parallel, batch_size=2)
            group.drop_protection()
            for name in ("a", "b"):
                for v in range(3):
                    d = desc_for(name, v)
                    got = client.get(d)
                    assert np.array_equal(got, make_payload(d)), (name, v, parallel)


class TestRebuildVerification:
    """Satellite fix: rebuilt bytes are digest-verified before storing."""

    def _corrupted_rebuild(self, parallel: bool) -> None:
        # verify_reads=False disables fetch-time digest checks, so a corrupt
        # survivor read flows into reconstruction. The rebuild-side
        # verification is unconditional and must refuse to store the result.
        group = StagingGroup.create(
            DOMAIN,
            num_servers=4,
            protection=ProtectionConfig(mode="rs", parity=2, verify_reads=False),
            retry=FAST_RETRY,
        )
        client = StagingClient(group)
        for name in ("a", "b"):
            client.put(desc_for(name, 0), make_payload(desc_for(name, 0)))
        (rec,) = group.records.for_key("a", 0)
        lost = rec.shards[0].server
        mate = rec.shards[1].server  # codeword mate: its bytes feed the decode
        inject_faults(
            group, [FaultPlan(server=mate, op=0, kind="corrupt", calls=20)]
        )
        failures = _obs.counter("staging.rebuild.verify_failures").value
        skipped = _obs.counter("staging.rebuild.skipped_records").value
        rebuild_server(group, lost, parallel=parallel, batch_size=2)
        assert _obs.counter("staging.rebuild.verify_failures").value > failures
        assert _obs.counter("staging.rebuild.skipped_records").value > skipped
        # Nothing unverified landed on the replacement (record-level
        # all-or-nothing: its parity/copy blobs are withheld too), and the
        # server is only healthy *empty*, never holding corrupt bytes.
        srv = group.servers[lost]
        assert srv.store.object_count == 0
        assert srv.protection_nbytes == 0
        assert group.health.state(lost) == "up"

    def test_serial_rebuild_refuses_corrupt_reconstruction(self):
        self._corrupted_rebuild(parallel=False)

    def test_pipelined_rebuild_refuses_corrupt_reconstruction(self):
        self._corrupted_rebuild(parallel=True)


class TestDegradedReadRetry:
    """Satellite fix: shard fetch digest checks ride the retry loop."""

    def test_transient_corruption_is_retried_not_fatal(self):
        cfg = ProtectionConfig(mode="rs", parity=1)
        group = StagingGroup.create(
            DOMAIN, num_servers=4, protection=cfg, retry=FAST_RETRY
        )
        client = StagingClient(group)
        d = desc_for("field", 1)
        data = make_payload(d)
        client.put(d, data)
        (rec,) = group.records.for_key("field", 1)
        survivor = rec.shards[1].server
        inject_faults(
            group,
            [
                FaultPlan(server=rec.shards[0].server, op=0, kind="crash"),
                FaultPlan(server=survivor, op=0, kind="corrupt", calls=1),
            ],
        )
        failures = _obs.counter("staging.client.verify_failures").value
        got = client.get(d)  # degraded read; survivor corrupts exactly once
        np.testing.assert_array_equal(got, data)
        assert _obs.counter("staging.client.verify_failures").value > failures
        # The corruption was transient: one retry cleared it, so the
        # survivor must not have been demoted to down.
        assert not group.health.is_down(survivor)

    def test_transient_copy_corruption_is_retried(self):
        cfg = ProtectionConfig(mode="replication", replicas=1)
        group = StagingGroup.create(
            DOMAIN, num_servers=4, protection=cfg, retry=FAST_RETRY
        )
        client = StagingClient(group)
        d = desc_for("field", 1)
        data = make_payload(d)
        client.put(d, data)
        (rec,) = group.records.for_key("field", 1)
        holder = rec.copies[0][0]
        inject_faults(
            group,
            [
                FaultPlan(server=rec.shards[0].server, op=0, kind="crash"),
                FaultPlan(server=holder, op=0, kind="corrupt", calls=1),
            ],
        )
        got = client.get(d)
        np.testing.assert_array_equal(got, data)
        assert not group.health.is_down(holder)


class TestRecoveryReport:
    """The obs-report section for recovery metrics renders from real runs."""

    def test_recovery_report_renders_and_empty_without_activity(self):
        from repro.analysis.obs_report import recovery_report

        assert recovery_report(snapshot={}) == ""
        group = StagingGroup.create(
            DOMAIN,
            num_servers=4,
            protection=ProtectionConfig(mode="rs", parity=2),
            retry=FAST_RETRY,
        )
        client = StagingClient(group)
        for v in range(4):
            d = desc_for("field", v)
            client.put(d, make_payload(d))
        (rec,) = group.records.for_key("field", 0)
        lost = rec.shards[0].server
        inject_faults(group, [FaultPlan(server=lost, op=0, kind="crash")])
        client.get(desc_for("field", 0))  # degraded read marks the server down
        rebuild_server(group, lost, parallel=True, batch_size=2)
        out = recovery_report()
        assert "recovery" in out
        assert "degraded reads" in out
        assert "rebuilds" in out
        assert "decode pipeline" in out
