"""Integration tests: the five fault-tolerance schemes on the threaded runtime.

These are the functional heart of the reproduction: for every scheme and
failure placement, a run with injected failures must observe exactly the
reads of a failure-free reference — except ``individual``, which must
demonstrably violate consistency (paper Figure 2).
"""

import pytest

from repro.errors import ConfigError
from repro.geometry import Domain
from repro.runtime import (
    ComponentSpec,
    FailurePlan,
    ThreadedWorkflow,
    run_with_reference,
)
from repro.workloads import coupled_specs

pytestmark = pytest.mark.integration


def specs(steps=10, **kw):
    return coupled_specs(num_steps=steps, domain=Domain((8, 8, 8)), **kw)


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            ThreadedWorkflow(specs(), "quantum")

    def test_empty_specs(self):
        with pytest.raises(ConfigError):
            ThreadedWorkflow([], "ds")

    def test_duplicate_names(self):
        s = specs()
        s[1].name = s[0].name
        with pytest.raises(ConfigError):
            ThreadedWorkflow(s, "ds")

    def test_domain_mismatch(self):
        s = specs()
        s[1].domain = Domain((4, 4, 4))
        with pytest.raises(ConfigError):
            ThreadedWorkflow(s, "ds")


class TestFailureFree:
    def test_ds_baseline(self):
        run = ThreadedWorkflow(specs(), "ds").run()
        assert run.failures_injected == 0
        assert run.component_stats["analytic"].gets == 10
        assert run.component_stats["simulation"].puts == 10

    def test_uncoordinated_failure_free_consistent(self):
        _, run = run_with_reference(specs(), "uncoordinated")
        assert run.consistent
        assert run.component_stats["analytic"].rollbacks == 0

    def test_checkpoints_taken_at_periods(self):
        run = ThreadedWorkflow(specs(steps=10, sim_period=4, analytic_period=5), "uncoordinated").run()
        # sim checkpoints after steps 3 and 7; ana after step 4 (and 9
        # suppressed: period boundary at step 9 is the last step).
        assert run.component_stats["simulation"].checkpoints_taken == 2
        assert run.component_stats["analytic"].checkpoints_taken == 2


class TestUncoordinated:
    def test_consumer_failure_replays(self):
        _, run = run_with_reference(
            specs(), "uncoordinated", failures=[FailurePlan("analytic", 7)]
        )
        assert run.consistent
        stats = run.component_stats["analytic"]
        assert stats.rollbacks == 1
        assert stats.replayed_gets > 0

    def test_producer_failure_suppresses_puts(self):
        _, run = run_with_reference(
            specs(), "uncoordinated", failures=[FailurePlan("simulation", 6)]
        )
        assert run.consistent
        stats = run.component_stats["simulation"]
        assert stats.rollbacks == 1
        assert stats.suppressed_puts > 0

    def test_failure_before_first_checkpoint(self):
        _, run = run_with_reference(
            specs(), "uncoordinated", failures=[FailurePlan("analytic", 2)]
        )
        assert run.consistent
        # Restarted from the beginning (no checkpoint yet).
        assert run.component_stats["analytic"].steps_reexecuted >= 2

    def test_both_components_fail(self):
        _, run = run_with_reference(
            specs(steps=12),
            "uncoordinated",
            failures=[FailurePlan("simulation", 5), FailurePlan("analytic", 9)],
        )
        assert run.consistent
        assert run.component_stats["simulation"].rollbacks == 1
        assert run.component_stats["analytic"].rollbacks == 1

    def test_repeated_failures_same_component(self):
        _, run = run_with_reference(
            specs(steps=12),
            "uncoordinated",
            failures=[FailurePlan("analytic", 4), FailurePlan("analytic", 9)],
        )
        assert run.consistent
        assert run.component_stats["analytic"].rollbacks == 2

    def test_failure_at_last_step(self):
        _, run = run_with_reference(
            specs(), "uncoordinated", failures=[FailurePlan("analytic", 9)]
        )
        assert run.consistent


class TestCoordinated:
    def test_consumer_failure_rolls_back_everyone(self):
        _, run = run_with_reference(
            specs(),
            "coordinated",
            failures=[FailurePlan("analytic", 7)],
            coordinated_period=4,
        )
        assert run.consistent
        assert run.component_stats["simulation"].rollbacks == 1
        assert run.component_stats["analytic"].rollbacks == 1

    def test_producer_failure(self):
        _, run = run_with_reference(
            specs(),
            "coordinated",
            failures=[FailurePlan("simulation", 6)],
            coordinated_period=4,
        )
        assert run.consistent

    def test_failure_before_first_coordinated_checkpoint(self):
        _, run = run_with_reference(
            specs(),
            "coordinated",
            failures=[FailurePlan("analytic", 2)],
            coordinated_period=4,
        )
        assert run.consistent

    def test_two_failures(self):
        _, run = run_with_reference(
            specs(steps=12),
            "coordinated",
            failures=[FailurePlan("simulation", 5), FailurePlan("analytic", 10)],
            coordinated_period=4,
        )
        assert run.consistent
        assert run.component_stats["analytic"].rollbacks == 2


class TestHybrid:
    def test_replica_failover_no_rollback(self):
        _, run = run_with_reference(
            specs(), "hybrid", failures=[FailurePlan("analytic", 5)]
        )
        assert run.consistent
        stats = run.component_stats["analytic"]
        assert stats.failovers == 1
        assert stats.rollbacks == 0

    def test_producer_still_uses_rollback(self):
        _, run = run_with_reference(
            specs(), "hybrid", failures=[FailurePlan("simulation", 6)]
        )
        assert run.consistent
        assert run.component_stats["simulation"].rollbacks == 1

    def test_replica_budget_exhaustion_falls_back_to_rollback(self):
        _, run = run_with_reference(
            specs(steps=12),
            "hybrid",
            failures=[FailurePlan("analytic", 3), FailurePlan("analytic", 8)],
        )
        assert run.consistent
        stats = run.component_stats["analytic"]
        assert stats.failovers == 1
        assert stats.rollbacks == 1


class TestIndividual:
    def test_consumer_failure_yields_inconsistency(self):
        _, run = run_with_reference(
            specs(),
            "individual",
            failures=[FailurePlan("analytic", 7)],
            expect_consistent=False,
        )
        assert run.consistent is False

    def test_failure_free_individual_is_consistent(self):
        _, run = run_with_reference(specs(), "individual")
        assert run.consistent
