"""Tests for ULFM-style communicator recovery and the spare pool."""

import pytest

from repro.errors import CommunicatorRevoked, ConfigError
from repro.runtime.ulfm import Communicator, FailureDetector, SparePool


class TestCommunicator:
    def test_initial_state(self):
        comm = Communicator("sim", 4)
        assert comm.size == 4
        assert comm.alive_ranks() == [0, 1, 2, 3]
        assert not comm.revoked
        comm.barrier()  # healthy barrier passes

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            Communicator("sim", 0)

    def test_fail_revokes(self):
        comm = Communicator("sim", 4)
        comm.fail(2)
        assert comm.revoked
        assert comm.failed_ranks() == [2]
        with pytest.raises(CommunicatorRevoked):
            comm.barrier()

    def test_fail_out_of_range(self):
        with pytest.raises(ConfigError):
            Communicator("sim", 2).fail(5)

    def test_shrink(self):
        comm = Communicator("sim", 4)
        comm.fail(1)
        small = comm.shrink()
        assert small.size == 3
        assert small.alive_ranks() == [0, 1, 2]
        assert not small.revoked
        assert small.epoch == comm.epoch + 1

    def test_shrink_no_survivors(self):
        comm = Communicator("sim", 1)
        comm.fail(0)
        with pytest.raises(CommunicatorRevoked):
            comm.shrink()

    def test_repair_refills_from_pool(self):
        comm = Communicator("sim", 4)
        comm.fail(2)
        pool = SparePool(8)
        repaired = comm.repair(pool)
        assert repaired.size == 4
        assert repaired.alive_ranks() == [0, 1, 2, 3]
        assert pool.available == 7

    def test_repair_preserves_survivor_proc_ids(self):
        comm = Communicator("sim", 3)
        original = {r.rank: r.proc_id for r in comm._ranks}
        comm.fail(1)
        repaired = comm.repair(SparePool(4))
        assert repaired._ranks[0].proc_id == original[0]
        assert repaired._ranks[2].proc_id == original[2]
        assert repaired._ranks[1].proc_id != original[1]

    def test_repair_healthy_is_noop(self):
        comm = Communicator("sim", 2)
        assert comm.repair(SparePool(0)) is comm


class TestSparePool:
    def test_acquire(self):
        pool = SparePool(3)
        ids = pool.acquire(2)
        assert len(ids) == 2
        assert pool.available == 1

    def test_exhaustion_without_spawn(self):
        pool = SparePool(1, allow_spawn=False)
        with pytest.raises(ConfigError):
            pool.acquire(2)
        # Failed acquire must not leak pool tokens.
        assert pool.available == 1

    def test_spawn_beyond_pool(self):
        pool = SparePool(1, allow_spawn=True)
        ids = pool.acquire(3)
        assert len(ids) == 3
        assert pool.spawned == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            SparePool(-1)

    def test_negative_acquire_rejected(self):
        with pytest.raises(ConfigError):
            SparePool(2).acquire(-1)

    def test_proc_ids_unique(self):
        pool = SparePool(10)
        ids = pool.acquire(5) + pool.acquire(5)
        assert len(set(ids)) == 10


class TestFailureDetector:
    def test_report_and_query(self):
        det = FailureDetector()
        det.report("sim", 2, 7)
        det.report("ana", 0, 9)
        assert det.count() == 2
        assert det.count("sim") == 1
        assert ("ana", 0, 9) in det.failures()

    def test_failures_snapshot_isolated(self):
        det = FailureDetector()
        det.report("sim", 0, 0)
        snap = det.failures()
        snap.clear()
        assert det.count() == 1
