"""Service-level degraded operation: the synchronized staging service keeps
serving reads byte-identically across staging-server loss, snapshots carry
the resilience state, and rebuild reintegrates a replacement server."""

import numpy as np
import pytest

from repro.core import WorkflowStaging
from repro.descriptors import ObjectDescriptor
from repro.faults import FaultPlan, inject_faults
from repro.runtime.staging_service import SynchronizedStaging
from repro.staging import ProtectionConfig, RetryPolicy, StagingGroup

from tests.conftest import make_payload


@pytest.fixture
def pgroup(domain) -> StagingGroup:
    return StagingGroup.create(
        domain,
        num_servers=4,
        protection=ProtectionConfig(mode="rs", parity=2),
        retry=RetryPolicy(base_backoff=0.001, max_backoff=0.004),
    )


@pytest.fixture
def service(pgroup):
    svc = SynchronizedStaging(
        WorkflowStaging(pgroup, enable_logging=True), poll_timeout=0.05, max_wait=3.0
    )
    svc.register("sim")
    svc.register("ana")
    return svc


def fdesc(domain, version):
    return ObjectDescriptor("field", version, domain.bbox)


class TestDegradedService:
    def test_reads_survive_server_crash(self, service, pgroup, domain):
        d = fdesc(domain, 0)
        service.put("sim", d, make_payload(d), 0)
        inject_faults(pgroup, [FaultPlan(server=1, op=0, kind="crash")])
        result = service.get_blocking("ana", d, 0)
        np.testing.assert_array_equal(result.data, make_payload(d))

    def test_puts_survive_server_crash(self, service, pgroup, domain):
        inject_faults(pgroup, [FaultPlan(server=2, op=0, kind="crash")])
        d = fdesc(domain, 0)
        service.put("sim", d, make_payload(d), 0)
        result = service.get_blocking("ana", d, 0)
        np.testing.assert_array_equal(result.data, make_payload(d))

    def test_snapshot_restores_protection_and_health(self, service, pgroup, domain):
        d0 = fdesc(domain, 0)
        service.put("sim", d0, make_payload(d0), 0)
        snap = service.snapshot()
        d1 = fdesc(domain, 1)
        service.put("sim", d1, make_payload(d1), 1)
        pgroup.health.mark_down(3)

        service.restore(snap)
        # Records rewound with the data: v1's record is gone, v0's remains.
        assert pgroup.records.for_key("field", 0)
        assert not pgroup.records.for_key("field", 1)
        # Health rewound too: the post-snapshot down-marking is forgotten.
        assert pgroup.health.state(3) == "up"

    def test_legacy_snapshot_without_resilience_keys_restores(
        self, service, pgroup, domain
    ):
        d0 = fdesc(domain, 0)
        service.put("sim", d0, make_payload(d0), 0)
        snap = service.snapshot(full=True)
        del snap["protection"]
        del snap["health"]
        service.restore(snap)  # must not raise

    def test_rebuild_server_restores_direct_service(self, service, pgroup, domain):
        d = fdesc(domain, 0)
        service.put("sim", d, make_payload(d), 0)
        inject_faults(pgroup, [FaultPlan(server=1, op=0, kind="crash")])
        service.get_blocking("ana", d, 0)  # degraded read downs server 1

        rebuilt = service.rebuild_server(1)
        assert rebuilt > 0
        assert pgroup.health.state(1) == "up"
        pgroup.drop_protection()
        result = service.get_blocking("ana", d, 1)
        np.testing.assert_array_equal(result.data, make_payload(d))
