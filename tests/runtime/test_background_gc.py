"""Concurrent background GC: watermarks, pausing, and bounded data-plane stalls."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import WorkflowStaging
from repro.core.garbage import BackgroundCollector, GCReport
from repro.descriptors import ObjectDescriptor
from repro.geometry import Domain
from repro.runtime.staging_service import SynchronizedStaging
from repro.staging import StagingGroup

from tests.conftest import make_payload

DOMAIN = Domain((8, 8, 4))


def make_service(**gc_kwargs) -> SynchronizedStaging:
    group = StagingGroup.create(DOMAIN, num_servers=4)
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True, auto_gc=False),
        poll_timeout=0.05,
        max_wait=5.0,
        max_ahead=10**9,  # these tests pace themselves
    )
    svc.register("sim")
    svc.register("ana")
    svc.declare_coupling("field", "ana")
    return svc


def fdesc(version: int) -> ObjectDescriptor:
    return ObjectDescriptor("field", version, DOMAIN.bbox)


def run_coupled_steps(svc: SynchronizedStaging, steps: int, check_every: int = 5):
    """Produce/consume/checkpoint ``steps`` versions through the service."""
    for v in range(steps):
        d = fdesc(v)
        svc.put("sim", d, make_payload(d), v)
        svc.get_blocking("ana", d, v)
        if (v + 1) % check_every == 0:
            svc.workflow_check("ana", v)
            svc.workflow_check("sim", v)


def wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestBackgroundCollectorUnit:
    """BackgroundCollector against fake batch/pressure functions."""

    def test_burst_drains_to_low_watermark(self):
        pressure = [1000]

        def batch():
            pressure[0] = max(0, pressure[0] - 100)
            return GCReport(1, 100, 0)

        bg = BackgroundCollector(
            run_batch=batch,
            pressure_bytes=lambda: pressure[0],
            high_watermark=500,
            low_watermark=200,
            interval=0.01,
        )
        bg.start()
        try:
            assert wait_until(lambda: pressure[0] <= 200)
        finally:
            bg.stop()
        assert len(bg.reports) >= 8  # 1000 -> 200 at 100/batch
        assert not bg.running

    def test_burst_stops_without_progress(self):
        calls = []

        def batch():
            calls.append(1)
            return GCReport(0, 0, 0)  # floors pin everything

        bg = BackgroundCollector(
            run_batch=batch,
            pressure_bytes=lambda: 10_000,  # permanently over the watermark
            high_watermark=100,
            interval=0.01,
        )
        bg.start()
        try:
            assert wait_until(lambda: len(calls) >= 3)
            time.sleep(0.05)
            # One batch per tick (no runaway burst), not thousands.
            assert len(calls) < 50
        finally:
            bg.stop()

    def test_paused_predicate_suspends_batches(self):
        calls = []
        paused = threading.Event()
        paused.set()
        bg = BackgroundCollector(
            run_batch=lambda: calls.append(1) or GCReport(0, 0, 0),
            pressure_bytes=lambda: 0,
            high_watermark=100,
            interval=0.01,
            paused=paused.is_set,
        )
        bg.start()
        try:
            time.sleep(0.08)
            assert not calls
            paused.clear()
            assert wait_until(lambda: len(calls) >= 1)
        finally:
            bg.stop()

    def test_wakeup_triggers_immediate_batch(self):
        calls = []
        bg = BackgroundCollector(
            run_batch=lambda: calls.append(1) or GCReport(0, 0, 0),
            pressure_bytes=lambda: 0,
            high_watermark=100,
            interval=60.0,  # effectively never ticks on its own
        )
        bg.start()
        try:
            assert not calls
            bg.wakeup()
            assert wait_until(lambda: len(calls) >= 1)
        finally:
            bg.stop()

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            BackgroundCollector(
                run_batch=lambda: GCReport(0, 0, 0),
                pressure_bytes=lambda: 0,
                high_watermark=10,
                low_watermark=20,
            )


class TestServiceIntegration:
    def test_background_gc_collects_dead_versions(self):
        svc = make_service()
        bg = svc.start_background_gc(high_watermark=1, interval=0.01)
        try:
            run_coupled_steps(svc, steps=20, check_every=5)
            # All but a short tail (one checkpoint window) become dead; the
            # collector reclaims them without any synchronous gc call.
            assert wait_until(
                lambda: svc.staging.log.version_count("field") <= 6
            ), f"retained: {svc.staging.log.logged_versions('field')}"
            assert any(r.versions_collected for r in svc.staging.gc_reports)
            assert bg.running
        finally:
            svc.shutdown()
        assert not bg.running

    def test_start_is_idempotent_and_stop_restores_auto_gc(self):
        svc = make_service()
        svc.staging.auto_gc = True
        bg = svc.start_background_gc(high_watermark=1 << 20)
        assert svc.start_background_gc(high_watermark=1) is bg
        assert svc.staging.auto_gc is False  # checks only queue candidates
        assert svc.staging.log.recovery_waker == bg.wakeup
        assert bg.wakeup in svc.staging.checkpointer.epoch_listeners
        svc.stop_background_gc()
        assert svc.staging.auto_gc is True
        assert svc.staging.log.recovery_waker is None
        assert bg.wakeup not in svc.staging.checkpointer.epoch_listeners
        svc.shutdown()

    def test_stop_runs_final_pass(self):
        svc = make_service()
        # Collector that never gets a chance to run (huge interval).
        svc.start_background_gc(high_watermark=1 << 30, interval=60.0)
        run_coupled_steps(svc, steps=12, check_every=3)
        svc.stop_background_gc()  # final unbounded pass drains candidates
        assert svc.staging.log.version_count("field") <= 4
        svc.shutdown()

    def test_gc_pauses_during_replay(self):
        svc = make_service()
        run_coupled_steps(svc, steps=6, check_every=3)
        assert not svc._gc_paused()
        svc.workflow_restart("ana", 6)
        if svc.staging.any_replaying():
            assert svc._gc_paused()
        svc.shutdown()

    def test_gc_excluded_around_snapshot(self):
        svc = make_service()
        assert not svc._gc_paused()
        svc._exclude_gc()
        assert svc._gc_paused()
        svc._readmit_gc()
        assert not svc._gc_paused()
        # A real snapshot excludes and readmits symmetrically.
        run_coupled_steps(svc, steps=3, check_every=10)
        svc.snapshot()
        assert not svc._gc_paused()
        svc.shutdown()


class TestBoundedStalls:
    def test_data_plane_stall_stays_bounded_under_background_gc(self):
        """With a one-eviction batch budget, a put/get never waits behind a
        sweep — only behind at most one candidate's eviction."""
        svc = make_service()
        svc.start_background_gc(
            high_watermark=1, low_watermark=0, interval=0.001, batch_versions=1
        )
        try:
            max_latency = 0.0
            for v in range(150):
                d = fdesc(v)
                t0 = time.perf_counter()
                svc.put("sim", d, make_payload(d), v)
                svc.get_blocking("ana", d, v)
                max_latency = max(max_latency, time.perf_counter() - t0)
                if (v + 1) % 5 == 0:
                    svc.workflow_check("ana", v)
            # The acceptance bar is <1ms of GC-induced stall; the assertion
            # is looser to absorb CI scheduling noise, while the benchmark
            # (bench_gc) measures the precise figure.
            assert max_latency < 0.25, f"max put+get latency {max_latency:.3f}s"
            # GC actually ran concurrently (the test is vacuous otherwise).
            assert any(r.versions_collected for r in svc.staging.gc_reports)
        finally:
            svc.shutdown()
        assert svc.staging.log.version_count("field") <= 6
