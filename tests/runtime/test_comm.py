"""Tests for inter-component synchronization primitives."""

import threading

import pytest

from repro.errors import SimulationError
from repro.runtime.comm import BarrierBroken, Mailbox, PhaseBarrier


class TestPhaseBarrier:
    def test_two_party_rendezvous(self):
        barrier = PhaseBarrier(2)
        results = []

        def worker():
            results.append(barrier.wait(timeout=5))

        t = threading.Thread(target=worker)
        t.start()
        results.append(barrier.wait(timeout=5))
        t.join(timeout=5)
        assert sorted(results) == [0, 1]

    def test_single_party_passes_immediately(self):
        assert PhaseBarrier(1).wait(timeout=1) == 0

    def test_action_runs_once(self):
        hits = []
        barrier = PhaseBarrier(1, action=lambda: hits.append(1))
        barrier.wait(timeout=1)
        barrier.wait(timeout=1)  # reusable
        assert hits == [1, 1]

    def test_abort_breaks_waiters(self):
        barrier = PhaseBarrier(2)
        errors = []

        def worker():
            try:
                barrier.wait(timeout=5)
            except BarrierBroken:
                errors.append(True)

        t = threading.Thread(target=worker)
        t.start()
        import time

        time.sleep(0.05)
        barrier.abort()
        t.join(timeout=5)
        assert errors == [True]

    def test_rejects_zero_parties(self):
        with pytest.raises(SimulationError):
            PhaseBarrier(0)


class TestMailbox:
    def test_send_recv(self):
        box = Mailbox("m")
        box.send("hello")
        assert box.recv(timeout=1) == "hello"

    def test_fifo_order(self):
        box = Mailbox("m")
        for i in range(5):
            box.send(i)
        assert [box.recv(timeout=1) for _ in range(5)] == list(range(5))

    def test_try_recv_empty(self):
        assert Mailbox("m").try_recv() is None

    def test_recv_timeout(self):
        with pytest.raises(TimeoutError):
            Mailbox("m").recv(timeout=0.05)

    def test_len(self):
        box = Mailbox("m")
        box.send(1)
        box.send(2)
        assert len(box) == 2
