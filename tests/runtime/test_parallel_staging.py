"""Stress tests for the parallel staging data path.

The service's two-tier locking (metadata lock + per-server locks) moves
payload bytes outside the metadata lock. These tests drive it with real
thread concurrency over >= 4 servers and check the three promises:

* results are byte-identical to the single-lock serial path;
* flow control and interruptible waits still work (no deadlock, prompt
  aborts) while payload phases are in flight;
* snapshot/restore quiesce the data plane, so concurrent rollback keeps
  every server's store and index in lockstep.

Payloads are sized above ``PARALLEL_THRESHOLD_BYTES`` so the pool fan-out
path actually runs (small payloads stay on the caller's thread by design).
"""

import threading
import time

import numpy as np
import pytest

from repro.core import WorkflowStaging
from repro.descriptors import ObjectDescriptor
from repro.geometry import Domain
from repro.runtime.staging_service import SynchronizedStaging, WaitInterrupted
from repro.staging import StagingGroup
from repro.staging.client import PARALLEL_THRESHOLD_BYTES

from tests.conftest import make_payload, requires_inproc
from tests.staging.test_store_index_invariant import check_lockstep

pytestmark = pytest.mark.integration

NUM_SERVERS = 4
STEPS = 6
# 64*64*16 float64 = 512 KiB per put: comfortably above the fan-out gate.
DOMAIN = Domain((64, 64, 16))
assert int(np.prod(DOMAIN.shape)) * 8 >= 2 * PARALLEL_THRESHOLD_BYTES


def make_service(parallel: bool, enable_logging: bool = True) -> SynchronizedStaging:
    group = StagingGroup.create(DOMAIN, num_servers=NUM_SERVERS, parallel=parallel)
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=enable_logging),
        poll_timeout=0.02,
        max_wait=20.0,
        max_ahead=2,
        parallel=parallel,
    )
    return svc


def desc_for(name: str, version: int) -> ObjectDescriptor:
    return ObjectDescriptor(name, version, DOMAIN.bbox)


def run_producer_consumer_workload(parallel: bool) -> dict[tuple[str, int], str]:
    """Two producers + two consumers over shared staging; returns digests."""
    svc = make_service(parallel)
    names = ["u", "v"]
    readers = ["ana0", "ana1"]
    for i, name in enumerate(names):
        svc.register(f"sim{i}")
    for reader in readers:
        svc.register(reader)
        for name in names:
            svc.declare_coupling(name, reader)
    results: dict[tuple[str, str, int], str] = {}
    errors: list[BaseException] = []
    lock = threading.Lock()

    def producer(i: int, name: str) -> None:
        try:
            for v in range(STEPS):
                d = desc_for(name, v)
                svc.put(f"sim{i}", d, make_payload(d), step=v)
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    def consumer(reader: str) -> None:
        try:
            for v in range(STEPS):
                for name in names:
                    r = svc.get_blocking(reader, desc_for(name, v), step=v)
                    expect = make_payload(desc_for(name, v))
                    assert np.array_equal(r.data, expect), (reader, name, v)
                    with lock:
                        results[(reader, name, v)] = r.digest
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=producer, args=(i, name))
        for i, name in enumerate(names)
    ] + [threading.Thread(target=consumer, args=(reader,)) for reader in readers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "workload deadlocked"
    assert not errors, errors
    svc.shutdown()
    # Both consumers saw identical bytes for every (name, version).
    merged: dict[tuple[str, int], str] = {}
    for (_reader, name, v), digest in results.items():
        assert merged.setdefault((name, v), digest) == digest
    return merged


class TestByteIdentity:
    def test_parallel_path_matches_serial_path(self):
        serial = run_producer_consumer_workload(parallel=False)
        parallel = run_producer_consumer_workload(parallel=True)
        assert serial == parallel
        assert len(parallel) == len(["u", "v"]) * STEPS


class TestLivenessUnderConcurrency:
    def test_flow_control_paces_producer_without_deadlock(self):
        svc = make_service(parallel=True)
        svc.register("sim")
        svc.register("ana")
        svc.declare_coupling("u", "ana")
        put_versions: list[int] = []

        def producer() -> None:
            for v in range(STEPS):
                d = desc_for("u", v)
                svc.put("sim", d, make_payload(d), step=v)
                put_versions.append(v)

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.3)
        # The consumer has read nothing (frontier -1): the producer completes
        # versions 0..max_ahead-1 and then throttles — not running free.
        assert len(put_versions) == svc.max_ahead
        for v in range(STEPS):
            r = svc.get_blocking("ana", desc_for("u", v), step=v)
            assert r.served_version == v
        t.join(timeout=30)
        assert not t.is_alive()
        assert put_versions == list(range(STEPS))

    def test_interrupt_aborts_waiting_get_promptly(self):
        svc = make_service(parallel=True)
        svc.register("ana")
        flag = {"stop": False}
        caught: list[BaseException] = []

        def reader() -> None:
            try:
                svc.get_blocking(
                    "ana", desc_for("u", 0), step=0, interrupt=lambda: flag["stop"]
                )
            except WaitInterrupted as exc:
                caught.append(exc)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.1)
        flag["stop"] = True
        t.join(timeout=5)
        assert not t.is_alive()
        assert len(caught) == 1

    def test_shutdown_wakes_all_waiters(self):
        svc = make_service(parallel=True)
        caught: list[BaseException] = []

        def reader(i: int) -> None:
            svc.register(f"ana{i}")
            try:
                svc.get_blocking(f"ana{i}", desc_for("u", 0), step=0)
            except WaitInterrupted as exc:
                caught.append(exc)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.1)
        svc.shutdown()
        for t in threads:
            t.join(timeout=5)
            assert not t.is_alive()
        assert len(caught) == 4


class TestRollbackUnderConcurrency:
    def test_concurrent_restore_keeps_servers_in_lockstep(self):
        # Non-logged mode, no declared consumers: producers run unthrottled
        # while the main thread repeatedly rolls the whole group back.
        svc = make_service(parallel=True, enable_logging=False)
        names = ["u", "v"]
        for i in range(len(names)):
            svc.register(f"sim{i}")
        errors: list[BaseException] = []

        def producer(i: int, name: str) -> None:
            try:
                for v in range(STEPS * 2):
                    d = desc_for(name, v)
                    svc.put(f"sim{i}", d, make_payload(d), step=v)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        base = svc.snapshot()
        threads = [
            threading.Thread(target=producer, args=(i, name))
            for i, name in enumerate(names)
        ]
        for t in threads:
            t.start()
        snaps = [base]
        for _ in range(6):
            time.sleep(0.01)
            snaps.append(svc.snapshot())
            svc.restore(snaps[len(snaps) // 2])
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "producers deadlocked against restore"
        assert not errors, errors
        # Every server's metadata stayed in lockstep with its payload store.
        for srv in svc.group.servers:
            check_lockstep(srv)
        # And a final full rollback still lands exactly on the base image.
        svc.restore(base)
        for srv in svc.group.servers:
            check_lockstep(srv)
            assert srv.store.object_count == 0

    @requires_inproc
    def test_snapshot_waits_out_inflight_puts(self):
        # The final get of v3 assumes the producer's last put lands after
        # the last restore — true in-process where puts and restores are
        # sub-millisecond, but over a wire the snapshot→restore window is
        # wide enough that the restore can legitimately roll back v3.
        svc = make_service(parallel=True, enable_logging=False)
        svc.register("sim")
        d = desc_for("u", 0)
        payload = make_payload(d)
        done = threading.Event()

        def producer() -> None:
            for v in range(4):
                svc.put("sim", desc_for("u", v), make_payload(desc_for("u", v)), step=v)
            done.set()

        t = threading.Thread(target=producer)
        t.start()
        # Snapshots taken while puts are in flight must each be internally
        # consistent: restoring any of them yields lockstep servers and a
        # fully assembled (never torn) payload for whatever they captured.
        for _ in range(5):
            snap = svc.snapshot()
            svc.restore(snap)
        t.join(timeout=30)
        assert not t.is_alive()
        assert done.is_set()
        r = svc.get_blocking("sim", desc_for("u", 3), step=3)
        assert np.array_equal(r.data, make_payload(desc_for("u", 3)))
        assert np.array_equal(payload, make_payload(d))  # inputs untouched
