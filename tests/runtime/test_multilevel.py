"""Multi-level checkpointing on the threaded runtime (paper future work).

Node-local checkpoints are fast but die with the node; a node failure
forces rollback to the last durable (PFS) checkpoint, and the staging log
must replay that *deeper* window — which exercises replay from a
non-latest checkpoint, retention past non-durable checkpoints, and the
drop-tier path of the checkpoint store.
"""

import dataclasses

import pytest

from repro.core.event_queue import EventQueue
from repro.core.events import EventKind
from repro.descriptors import ObjectDescriptor
from repro.geometry import BBox, Domain
from repro.runtime import (
    CheckpointStore,
    CheckpointTier,
    FailurePlan,
    run_with_reference,
)
from repro.workloads import coupled_specs

pytestmark = pytest.mark.integration

DOMAIN = Domain((8, 8, 4))


def ml_specs(steps=14, interval=2):
    specs = coupled_specs(num_steps=steps, domain=DOMAIN, sim_period=3, analytic_period=3)
    return [
        dataclasses.replace(s, pfs_checkpoint_interval=interval) for s in specs
    ]


class TestQueueDurability:
    def _queue(self):
        q = EventQueue(component="c")
        d = lambda v: ObjectDescriptor("x", v, BBox((0,), (4,)))
        q.record_data(EventKind.GET, d(0), "", 0)
        q.record_checkpoint(step=0, durable=True)
        q.record_data(EventKind.GET, d(1), "", 1)
        q.record_checkpoint(step=1, durable=False)
        q.record_data(EventKind.GET, d(2), "", 2)
        return q

    def test_latest_checkpoint_by_durability(self):
        q = self._queue()
        assert q.latest_checkpoint().durable is False
        assert q.latest_checkpoint(durable_only=True).durable is True

    def test_replay_script_depth(self):
        q = self._queue()
        shallow = q.build_replay_script()
        deep = q.build_replay_script(durable_only=True)
        assert [e.desc.version for e in shallow.events] == [2]
        assert [e.desc.version for e in deep.events] == [1, 2]

    def test_trim_horizon_respects_durability(self):
        q = self._queue()
        # Only events before the durable checkpoint may be trimmed.
        q.trim_before(q.trimmable_horizon())
        deep = q.build_replay_script(durable_only=True)
        assert [e.desc.version for e in deep.events] == [1, 2]

    def test_version_floor_uses_durable(self):
        q = self._queue()
        assert q.version_floor("x") == 1  # reads after the durable ckpt


class TestCheckpointStoreTiers:
    def test_drop_tier(self):
        store = CheckpointStore()
        store.save("c", 0, {"v": 0}, tier=CheckpointTier.PFS)
        store.save("c", 4, {"v": 1}, tier=CheckpointTier.NODE_LOCAL)
        assert store.drop_tier("c", CheckpointTier.NODE_LOCAL) == 1
        assert store.latest("c").load_state() == {"v": 0}

    def test_drop_tier_missing_component(self):
        assert CheckpointStore().drop_tier("ghost", CheckpointTier.PFS) == 0


class TestMultiLevelWorkflow:
    def test_process_failure_uses_node_local(self):
        _, run = run_with_reference(
            ml_specs(), "uncoordinated", failures=[FailurePlan("analytic", 10)]
        )
        assert run.consistent
        assert run.component_stats["analytic"].rollbacks == 1

    def test_node_failure_falls_back_to_durable(self):
        _, run = run_with_reference(
            ml_specs(),
            "uncoordinated",
            failures=[FailurePlan("analytic", 10, kind="node")],
        )
        assert run.consistent
        # Deeper rollback: more re-executed steps than a process failure.
        assert run.component_stats["analytic"].steps_reexecuted >= 2

    def test_node_failure_deeper_than_process_failure(self):
        _, proc = run_with_reference(
            ml_specs(), "uncoordinated", failures=[FailurePlan("analytic", 11)]
        )
        _, node = run_with_reference(
            ml_specs(),
            "uncoordinated",
            failures=[FailurePlan("analytic", 11, kind="node")],
        )
        assert proc.consistent and node.consistent
        assert (
            node.component_stats["analytic"].steps_reexecuted
            >= proc.component_stats["analytic"].steps_reexecuted
        )

    def test_producer_node_failure(self):
        _, run = run_with_reference(
            ml_specs(),
            "uncoordinated",
            failures=[FailurePlan("simulation", 10, kind="node")],
        )
        assert run.consistent
        assert run.component_stats["simulation"].suppressed_puts > 0

    def test_node_then_process_failure(self):
        _, run = run_with_reference(
            ml_specs(),
            "uncoordinated",
            failures=[
                FailurePlan("analytic", 7, kind="node"),
                FailurePlan("analytic", 12),
            ],
        )
        assert run.consistent
        assert run.component_stats["analytic"].rollbacks == 2

    def test_bad_kind_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            FailurePlan("analytic", 3, kind="gamma-burst")
