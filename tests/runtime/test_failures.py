"""Tests for failure injection."""

import pytest

from repro.errors import ConfigError
from repro.runtime.failures import FailureInjector, FailurePlan, mtbf_failure_steps
from repro.util.rng import RngRegistry


class TestFailurePlan:
    def test_valid(self):
        p = FailurePlan("sim", 3, rank=1)
        assert p.component == "sim"

    def test_rejects_negative_step(self):
        with pytest.raises(ConfigError):
            FailurePlan("sim", -1)

    def test_rejects_negative_rank(self):
        with pytest.raises(ConfigError):
            FailurePlan("sim", 0, rank=-2)


class TestInjector:
    def test_fires_at_step(self):
        inj = FailureInjector([FailurePlan("sim", 3)])
        assert inj.poll("sim", 2) is None
        plan = inj.poll("sim", 3)
        assert plan is not None and plan.step == 3

    def test_fires_once(self):
        inj = FailureInjector([FailurePlan("sim", 3)])
        assert inj.poll("sim", 3) is not None
        assert inj.poll("sim", 3) is None
        assert inj.fired[0].step == 3

    def test_fires_late_if_step_skipped(self):
        inj = FailureInjector([FailurePlan("sim", 3)])
        assert inj.poll("sim", 5) is not None

    def test_component_scoped(self):
        inj = FailureInjector([FailurePlan("sim", 3)])
        assert inj.poll("ana", 10) is None
        assert inj.pending_count == 1

    def test_multiple_plans_ordered(self):
        inj = FailureInjector([FailurePlan("sim", 5), FailurePlan("sim", 2)])
        assert inj.poll("sim", 9).step == 2
        assert inj.poll("sim", 9).step == 5

    def test_schedule_dynamic(self):
        inj = FailureInjector()
        inj.schedule(FailurePlan("ana", 1))
        assert inj.pending_for("ana") == [FailurePlan("ana", 1)]
        assert inj.poll("ana", 1) is not None
        assert inj.pending_count == 0


class TestMtbfSteps:
    def test_deterministic(self):
        rng1, rng2 = RngRegistry(7), RngRegistry(7)
        a = mtbf_failure_steps(rng1, "f", 40, 10.0, 100.0)
        b = mtbf_failure_steps(rng2, "f", 40, 10.0, 100.0)
        assert a == b

    def test_steps_in_range(self):
        rng = RngRegistry(1)
        steps = mtbf_failure_steps(rng, "f", 40, 10.0, 50.0)
        assert all(0 <= s < 40 for s in steps)

    def test_mean_rate(self):
        rng = RngRegistry(2)
        counts = []
        for i in range(200):
            steps = mtbf_failure_steps(rng, f"f{i}", 40, 15.0, 600.0)
            counts.append(len(steps))
        mean = sum(counts) / len(counts)
        # 600 s horizon / 600 s MTBF ~ 1 failure per run.
        assert 0.6 < mean < 1.5

    def test_max_failures_cap(self):
        rng = RngRegistry(3)
        steps = mtbf_failure_steps(rng, "f", 1000, 10.0, 5.0, max_failures=4)
        assert len(steps) == 4

    def test_validation(self):
        rng = RngRegistry(0)
        with pytest.raises(ConfigError):
            mtbf_failure_steps(rng, "f", 0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            mtbf_failure_steps(rng, "f", 10, 0.0, 1.0)
