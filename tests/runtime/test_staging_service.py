"""Tests for the synchronized staging service (blocking gets, flow control)."""

import threading
import time

import numpy as np
import pytest

from repro.core import WorkflowStaging
from repro.descriptors import ObjectDescriptor
from repro.runtime.staging_service import SynchronizedStaging, WaitInterrupted

from tests.conftest import make_payload


@pytest.fixture
def service(group):
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True), poll_timeout=0.05, max_wait=3.0
    )
    svc.register("sim")
    svc.register("ana")
    return svc


def fdesc(domain, version):
    return ObjectDescriptor("field", version, domain.bbox)


class TestBlockingGet:
    def test_get_available_data_immediate(self, service, domain):
        d = fdesc(domain, 0)
        service.put("sim", d, make_payload(d), 0)
        r = service.get_blocking("ana", d, 0)
        assert np.array_equal(r.data, make_payload(d))

    def test_get_waits_for_producer(self, service, domain):
        d = fdesc(domain, 0)
        results = []

        def reader():
            results.append(service.get_blocking("ana", d, 0))

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.1)
        assert not results  # still waiting
        service.put("sim", d, make_payload(d), 0)
        t.join(timeout=5)
        assert results and results[0].served_version == 0

    def test_interrupt_predicate_aborts(self, service, domain):
        flag = {"stop": False}
        d = fdesc(domain, 0)
        errs = []

        def reader():
            try:
                service.get_blocking("ana", d, 0, interrupt=lambda: flag["stop"])
            except WaitInterrupted:
                errs.append(True)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.1)
        flag["stop"] = True
        t.join(timeout=5)
        assert errs == [True]

    def test_shutdown_aborts(self, service, domain):
        d = fdesc(domain, 0)
        errs = []

        def reader():
            try:
                service.get_blocking("ana", d, 0)
            except WaitInterrupted:
                errs.append(True)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        service.shutdown()
        t.join(timeout=5)
        assert errs == [True]

    def test_deadline_aborts(self, group, domain):
        svc = SynchronizedStaging(
            WorkflowStaging(group), poll_timeout=0.02, max_wait=0.1
        )
        svc.register("ana")
        with pytest.raises(WaitInterrupted, match="waited over"):
            svc.get_blocking("ana", fdesc(domain, 0), 0)


class TestFlowControl:
    def test_producer_blocked_by_lagging_consumer(self, service, domain):
        service.declare_coupling("field", "ana")
        # Fill the window (max_ahead=2): versions 0 and 1 with frontier -1.
        for v in range(2):
            d = fdesc(domain, v)
            service.put("sim", d, make_payload(d), v)
        blocked = []

        def producer():
            d = fdesc(domain, 2)
            try:
                service.put("sim", d, make_payload(d), 2)
                blocked.append("completed")
            except WaitInterrupted:
                blocked.append("interrupted")

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.15)
        assert blocked == []  # producer waiting for the consumer
        service.get_blocking("ana", fdesc(domain, 0), 0)  # consumer advances
        t.join(timeout=5)
        assert blocked == ["completed"]

    def test_no_consumers_no_blocking(self, service, domain):
        for v in range(6):
            d = fdesc(domain, v)
            service.put("sim", d, make_payload(d), v)  # never blocks

    def test_frontier_tracks_reads(self, service, domain):
        service.declare_coupling("field", "ana")
        d = fdesc(domain, 0)
        service.put("sim", d, make_payload(d), 0)
        assert service._min_frontier("field") == -1
        service.get_blocking("ana", d, 0)
        assert service._min_frontier("field") == 0


class TestSnapshot:
    def test_snapshot_restore(self, service, domain):
        service.declare_coupling("field", "ana")
        d0 = fdesc(domain, 0)
        service.put("sim", d0, make_payload(d0), 0)
        service.get_blocking("ana", d0, 0)
        snap = service.snapshot()
        d1 = fdesc(domain, 1)
        service.put("sim", d1, make_payload(d1), 1)
        service.get_blocking("ana", d1, 1)
        service.restore(snap)
        assert service._min_frontier("field") == 0
        assert service.memory_bytes() == d0.nbytes

    def test_restore_wrong_shape_rejected(self, service):
        from repro.errors import StagingError

        with pytest.raises(StagingError):
            service.restore({"servers": [], "frontier": {}})
