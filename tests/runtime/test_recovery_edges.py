"""Edge cases in runtime failure recovery."""

import pytest

from repro.geometry import Domain
from repro.runtime import FailurePlan, ThreadedWorkflow, run_with_reference
from repro.workloads import coupled_specs

pytestmark = pytest.mark.integration

DOMAIN = Domain((8, 8, 4))


def specs(steps=12, **kw):
    return coupled_specs(num_steps=steps, domain=DOMAIN, **kw)


class TestReplayEdges:
    def test_failure_during_replay(self):
        # Two failures at the same step: the second fires while the first's
        # replay is still in progress; the script is rebuilt from scratch.
        _, run = run_with_reference(
            specs(),
            "uncoordinated",
            failures=[FailurePlan("analytic", 8), FailurePlan("analytic", 8)],
        )
        assert run.consistent
        assert run.component_stats["analytic"].rollbacks == 2

    def test_producer_failure_during_its_replay(self):
        _, run = run_with_reference(
            specs(),
            "uncoordinated",
            failures=[FailurePlan("simulation", 6), FailurePlan("simulation", 6)],
        )
        assert run.consistent
        assert run.component_stats["simulation"].rollbacks == 2

    def test_simultaneous_failures_both_components(self):
        _, run = run_with_reference(
            specs(),
            "uncoordinated",
            failures=[FailurePlan("simulation", 7), FailurePlan("analytic", 7)],
        )
        assert run.consistent

    def test_failure_at_step_zero(self):
        _, run = run_with_reference(
            specs(), "uncoordinated", failures=[FailurePlan("analytic", 0)]
        )
        assert run.consistent
        # Restarted from the very beginning: no checkpoint existed.
        assert run.component_stats["analytic"].rollbacks == 1

    def test_three_failures_alternating(self):
        _, run = run_with_reference(
            specs(steps=15),
            "uncoordinated",
            failures=[
                FailurePlan("analytic", 4),
                FailurePlan("simulation", 8),
                FailurePlan("analytic", 12),
            ],
        )
        assert run.consistent
        assert run.failures_injected == 3


class TestCoordinatedEdges:
    def test_failure_right_after_coordinated_checkpoint(self):
        _, run = run_with_reference(
            specs(),
            "coordinated",
            failures=[FailurePlan("analytic", 4)],
            coordinated_period=4,
        )
        assert run.consistent

    def test_back_to_back_failures(self):
        _, run = run_with_reference(
            specs(),
            "coordinated",
            failures=[FailurePlan("simulation", 5), FailurePlan("simulation", 6)],
            coordinated_period=4,
        )
        assert run.consistent

    def test_failure_when_one_component_finished(self):
        # The analytic runs fewer steps and parks in the protocol's done
        # set; a late simulation failure must still drag it back.
        sim_spec, ana_spec = specs(steps=12)
        ana_spec.num_steps = 8
        _, run = run_with_reference(
            [sim_spec, ana_spec],
            "coordinated",
            failures=[FailurePlan("simulation", 11)],
            coordinated_period=4,
        )
        assert run.consistent


class TestSubsetWorkloads:
    @pytest.mark.parametrize("fraction", [0.25, 0.5, 1.0])
    def test_case1_subsets_consistent_under_failure(self, fraction):
        from repro.workloads import case1_specs

        sp = case1_specs(fraction, num_steps=10)
        for s in sp:
            s.domain = DOMAIN
        _, run = run_with_reference(
            sp, "uncoordinated", failures=[FailurePlan("analytic", 7)]
        )
        assert run.consistent

    def test_case2_short_period_consistent(self):
        from repro.workloads import case2_specs

        sp = case2_specs(2, num_steps=10)
        for s in sp:
            s.domain = DOMAIN
        _, run = run_with_reference(
            sp, "uncoordinated", failures=[FailurePlan("simulation", 7)]
        )
        assert run.consistent
        # Frequent checkpoints -> small replay windows.
        assert run.component_stats["simulation"].steps_reexecuted <= 2
