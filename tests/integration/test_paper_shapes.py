"""Shape assertions on the performance simulator vs the paper's claims.

These tests pin the *qualitative* reproduction results so a regression in
the cost model is caught immediately: overhead bands, scheme orderings, and
growth directions. Exact paper-vs-measured numbers live in the benchmarks.
"""

import pytest

from repro.perfsim import (
    CONSUMER,
    PRODUCER,
    SimFailure,
    sample_failures,
    simulate,
    table2_config,
    table3_config,
)

pytestmark = pytest.mark.slow


class TestFig9aShape:
    def test_write_overhead_in_band_and_rising(self):
        overheads = {}
        for frac in (0.2, 1.0):
            cfg = table2_config(subset_fraction=frac)
            ds = simulate(cfg, "ds")
            un = simulate(cfg, "uncoordinated")
            overheads[frac] = (
                un.cumulative_write_response / ds.cumulative_write_response - 1
            ) * 100
        # Paper: +10 % at 20 % subset rising to +15 % at 100 %.
        assert 7 < overheads[0.2] < 13
        assert 12 < overheads[1.0] < 18
        assert overheads[0.2] < overheads[1.0]


class TestFig9cdShape:
    def test_memory_overhead_band_case1(self):
        cfg = table2_config(subset_fraction=0.6)
        ds = simulate(cfg, "ds")
        un = simulate(cfg, "uncoordinated")
        overhead = (un.mean_memory / ds.mean_memory - 1) * 100
        # Paper band: 81-86 %.
        assert 70 < overhead < 100

    def test_memory_overhead_grows_with_period(self):
        values = []
        for period in (2, 4, 6):
            cfg = table2_config(checkpoint_period=period)
            ds = simulate(cfg, "ds")
            un = simulate(cfg, "uncoordinated")
            values.append(un.mean_memory / ds.mean_memory)
        assert values[0] < values[1] < values[2]


class TestFig9eShape:
    def test_scheme_ordering_with_one_failure(self):
        cfg = table2_config()
        failure = [SimFailure(PRODUCER, 17)]
        times = {
            s: simulate(cfg, s, failures=failure).total_time
            for s in ("coordinated", "uncoordinated", "hybrid", "individual")
        }
        assert times["uncoordinated"] < times["coordinated"]
        assert times["hybrid"] < times["coordinated"]
        assert times["individual"] < times["coordinated"]
        # Un ~ Hy ~ In within a couple of percent (the paper's "nearly same
        # execution time as individual checkpoint").
        spread = max(times["uncoordinated"], times["hybrid"], times["individual"])
        base = min(times["uncoordinated"], times["hybrid"], times["individual"])
        assert (spread - base) / base < 0.03

    def test_improvement_band_sim_victim(self):
        cfg = table2_config()
        failure = [SimFailure(PRODUCER, 17)]
        co = simulate(cfg, "coordinated", failures=failure).total_time
        un = simulate(cfg, "uncoordinated", failures=failure).total_time
        improvement = (co - un) / co * 100
        # Paper: 3.05-3.28 %.
        assert 2.0 < improvement < 5.0


class TestFig10Shape:
    def test_improvement_grows_with_failures(self):
        cfg = table3_config(704)
        means = []
        for count in (1, 3):
            gaps = []
            for seed in range(6):
                f = sample_failures(cfg, count, seed=seed)
                co = simulate(cfg, "coordinated", failures=f).total_time
                un = simulate(cfg, "uncoordinated", failures=f).total_time
                gaps.append((co - un) / co * 100)
            means.append(sum(gaps) / len(gaps))
        assert means[0] < means[1]

    def test_improvement_grows_with_scale(self):
        gaps = {}
        for scale in (704, 11264):
            cfg = table3_config(scale)
            vals = []
            for seed in range(4):
                f = sample_failures(cfg, 3, seed=seed)
                co = simulate(cfg, "coordinated", failures=f).total_time
                un = simulate(cfg, "uncoordinated", failures=f).total_time
                vals.append((co - un) / co * 100)
            gaps[scale] = sum(vals) / len(vals)
        assert gaps[11264] > gaps[704]

    def test_hybrid_consumer_failures_nearly_free(self):
        cfg = table3_config(704)
        f = [SimFailure(CONSUMER, 17)]
        hy = simulate(cfg, "hybrid", failures=f).total_time
        clean = simulate(cfg, "hybrid").total_time
        assert (hy - clean) / clean < 0.01
