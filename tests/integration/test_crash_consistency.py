"""Property-based crash-consistency tests across randomized failure schedules.

Invariant 1 of DESIGN.md: for ANY schedule of fail-stop failures under the
uncoordinated / hybrid / coordinated schemes, every component's observed
(variable, version, payload) read sequence equals the failure-free reference.
The ``individual`` baseline must instead violate it whenever a consumer
rolls back past evicted versions.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import Domain
from repro.runtime import FailurePlan, run_with_reference
from repro.workloads import coupled_specs

pytestmark = [pytest.mark.integration, pytest.mark.slow]

DOMAIN = Domain((8, 8, 4))
STEPS = 10


def specs():
    return coupled_specs(num_steps=STEPS, domain=DOMAIN)


failure_schedules = st.lists(
    st.tuples(
        st.sampled_from(["simulation", "analytic"]),
        st.integers(1, STEPS - 1),
    ),
    min_size=1,
    max_size=3,
).map(lambda raw: [FailurePlan(c, s) for c, s in sorted(raw, key=lambda x: x[1])])


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(failure_schedules)
def test_uncoordinated_read_stable_under_any_schedule(schedule):
    _, run = run_with_reference(specs(), "uncoordinated", failures=schedule)
    assert run.consistent
    assert run.failures_injected == len(schedule)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(failure_schedules)
def test_coordinated_read_stable_under_any_schedule(schedule):
    _, run = run_with_reference(
        specs(), "coordinated", failures=schedule, coordinated_period=4
    )
    assert run.consistent


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(failure_schedules)
def test_hybrid_read_stable_under_any_schedule(schedule):
    _, run = run_with_reference(specs(), "hybrid", failures=schedule)
    assert run.consistent


def test_individual_consumer_rollback_is_inconsistent():
    # Deterministic witness of the paper's Fig. 2 case 1: the analytic rolls
    # back and re-reads versions the original staging already dropped.
    _, run = run_with_reference(
        specs(),
        "individual",
        failures=[FailurePlan("analytic", 8)],
        expect_consistent=False,
    )
    assert run.consistent is False


def test_uncoordinated_write_idempotence():
    # Invariant 2: a rolled-back producer's redundant puts never create new
    # versions — the suppressed-put count equals the replayed puts, and the
    # staged bytes match the reference run's.
    ref, run = run_with_reference(
        specs(), "uncoordinated", failures=[FailurePlan("simulation", 6)]
    )
    assert run.consistent
    assert run.component_stats["simulation"].suppressed_puts > 0


def test_replay_termination_and_counts():
    # Invariant 4: replay ends and the component resumes live execution.
    _, run = run_with_reference(
        specs(), "uncoordinated", failures=[FailurePlan("analytic", 7)]
    )
    stats = run.component_stats["analytic"]
    assert stats.replayed_gets > 0
    # Lives past replay: total gets == steps re-executed + live steps.
    assert stats.gets >= STEPS
