"""Tests for size/time units and formatting."""

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    TIB,
    fmt_bytes,
    fmt_time,
)


class TestConstants:
    def test_binary_ladder(self):
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB
        assert TIB == 1024 * GIB

    def test_paper_data_size(self):
        # Table II: 512x512x256 float64 = 0.5 GiB per step.
        assert 512 * 512 * 256 * 8 == GIB // 2


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(123) == "123 B"

    def test_kib(self):
        assert fmt_bytes(2048) == "2.00 KiB"

    def test_gib(self):
        assert fmt_bytes(20 * GIB) == "20.00 GiB"

    def test_tib(self):
        assert fmt_bytes(int(1.5 * TIB)) == "1.50 TiB"

    def test_negative(self):
        assert fmt_bytes(-MIB) == "-1.00 MiB"

    def test_zero(self):
        assert fmt_bytes(0) == "0 B"


class TestFmtTime:
    def test_microseconds(self):
        assert fmt_time(1.5e-6) == "1.500 us"

    def test_milliseconds(self):
        assert fmt_time(0.0032) == "3.200 ms"

    def test_seconds(self):
        assert fmt_time(12.345) == "12.345 s"

    def test_minutes(self):
        assert fmt_time(90) == "1.50 min"

    def test_hours(self):
        assert fmt_time(7200) == "2.00 h"

    def test_negative(self):
        assert fmt_time(-0.5).startswith("-")
