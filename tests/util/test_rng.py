"""Tests for seeded RNG streams."""

import numpy as np
import pytest

from repro.util.rng import RngRegistry, stream_seed


class TestStreamSeed:
    def test_deterministic(self):
        assert stream_seed(42, "a") == stream_seed(42, "a")

    def test_name_sensitivity(self):
        assert stream_seed(42, "a") != stream_seed(42, "b")

    def test_seed_sensitivity(self):
        assert stream_seed(1, "a") != stream_seed(2, "a")

    def test_range(self):
        for name in ("x", "y", "failure-0"):
            s = stream_seed(7, name)
            assert 0 <= s < 2**63

    def test_no_collision_on_concatenation_ambiguity(self):
        # "1:ab" vs "1a:b" style ambiguity must not collide.
        assert stream_seed(1, "ab") != stream_seed(11, "b")


class TestRngRegistry:
    def test_same_name_same_generator(self):
        reg = RngRegistry(0)
        assert reg.get("s") is reg.get("s")

    def test_different_names_independent(self):
        reg = RngRegistry(0)
        a = reg.get("a").random(8)
        b = reg.get("b").random(8)
        assert not np.allclose(a, b)

    def test_order_independence(self):
        r1 = RngRegistry(5)
        r2 = RngRegistry(5)
        _ = r1.get("first").random()
        # Request in a different order; streams must still match by name.
        x2 = r2.get("second").random(4)
        x1 = r1.get("second").random(4)
        assert np.allclose(x1, x2)

    def test_spawn_namespacing(self):
        reg = RngRegistry(9)
        child = reg.spawn("sub")
        assert child.root_seed == stream_seed(9, "sub")
        assert not np.allclose(child.get("x").random(4), reg.get("x").random(4))

    def test_exponential_positive(self):
        reg = RngRegistry(3)
        for _ in range(50):
            assert reg.exponential("e", 10.0) > 0

    def test_exponential_mean(self):
        reg = RngRegistry(3)
        draws = [reg.exponential("e", 5.0) for _ in range(4000)]
        assert 4.5 < sum(draws) / len(draws) < 5.5

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            RngRegistry(0).exponential("e", 0.0)

    def test_uniform_bounds(self):
        reg = RngRegistry(1)
        for _ in range(100):
            v = reg.uniform("u", 2.0, 3.0)
            assert 2.0 <= v < 3.0

    def test_uniform_rejects_inverted(self):
        with pytest.raises(ValueError):
            RngRegistry(0).uniform("u", 3.0, 2.0)

    def test_integers_bounds(self):
        reg = RngRegistry(1)
        vals = {reg.integers("i", 0, 4) for _ in range(200)}
        assert vals == {0, 1, 2, 3}
