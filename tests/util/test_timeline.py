"""Tests for metric timelines and counters."""

import pytest

from repro.util.timeline import Counter, Timeline


class TestTimeline:
    def test_empty_defaults(self):
        t = Timeline("m")
        assert len(t) == 0
        assert t.last == 0.0
        assert t.peak == 0.0
        assert t.mean() == 0.0
        assert t.time_weighted_mean() == 0.0

    def test_record_and_iterate(self):
        t = Timeline("m")
        t.record(0.0, 1.0)
        t.record(1.0, 3.0)
        assert list(t) == [(0.0, 1.0), (1.0, 3.0)]

    def test_last_and_peak(self):
        t = Timeline("m")
        for time, val in [(0, 5), (1, 9), (2, 2)]:
            t.record(time, val)
        assert t.last == 2
        assert t.peak == 9

    def test_mean(self):
        t = Timeline("m")
        for i, v in enumerate([2.0, 4.0, 6.0]):
            t.record(i, v)
        assert t.mean() == pytest.approx(4.0)

    def test_time_weighted_mean_uneven_intervals(self):
        t = Timeline("m")
        t.record(0.0, 10.0)  # held for 9 seconds
        t.record(9.0, 0.0)  # held for 1 second
        t.record(10.0, 100.0)  # final sample: zero weight
        assert t.time_weighted_mean() == pytest.approx((10 * 9 + 0 * 1) / 10)

    def test_time_weighted_single_sample(self):
        t = Timeline("m")
        t.record(3.0, 7.0)
        assert t.time_weighted_mean() == 7.0

    def test_time_weighted_zero_span(self):
        t = Timeline("m")
        t.record(1.0, 3.0)
        t.record(1.0, 5.0)
        assert t.time_weighted_mean() == 5.0

    def test_rejects_time_regression(self):
        t = Timeline("m")
        t.record(5.0, 1.0)
        with pytest.raises(ValueError):
            t.record(4.0, 1.0)

    def test_equal_times_allowed(self):
        t = Timeline("m")
        t.record(1.0, 1.0)
        t.record(1.0, 2.0)
        assert len(t) == 2


class TestCounter:
    def test_initial(self):
        c = Counter("c")
        assert c.total == 0.0
        assert c.count == 0
        assert c.mean() == 0.0

    def test_add(self):
        c = Counter("c")
        c.add(2.0)
        c.add(4.0)
        assert c.total == 6.0
        assert c.count == 2
        assert c.mean() == 3.0
