"""Unit tests for the fault-injecting server proxy."""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.descriptors import ObjectDescriptor
from repro.errors import ServerUnavailable, TransientServerError
from repro.faults import FaultInjector, FaultPlan, FaultyServer, inject_faults
from repro.geometry import BBox
from repro.staging import StagingServer
from repro.util.rng import RngRegistry


def _server_with_data() -> tuple[StagingServer, ObjectDescriptor, np.ndarray]:
    server = StagingServer(0)
    desc = ObjectDescriptor("x", 1, BBox((0, 0), (4, 4)))
    data = np.arange(16, dtype=np.float64).reshape(4, 4)
    server.put(desc, data)
    return server, desc, data


def _wrap(server: StagingServer, *plans: FaultPlan) -> FaultyServer:
    return FaultyServer(server, FaultInjector(list(plans)))


class TestCrash:
    def test_crash_refuses_every_data_op(self):
        inner, desc, _ = _server_with_data()
        proxy = _wrap(inner, FaultPlan(server=0, op=0, kind="crash"))
        with pytest.raises(ServerUnavailable):
            proxy.get(desc)
        with pytest.raises(ServerUnavailable):  # stays crashed
            proxy.covers(desc)
        assert proxy.crashed

    def test_heal_restores_service(self):
        inner, desc, data = _server_with_data()
        proxy = _wrap(inner, FaultPlan(server=0, op=0, kind="crash"))
        with pytest.raises(ServerUnavailable):
            proxy.get(desc)
        proxy.heal()
        np.testing.assert_array_equal(proxy.get(desc), data)

    def test_control_plane_passes_through_a_crash(self):
        inner, desc, _ = _server_with_data()
        proxy = _wrap(inner, FaultPlan(server=0, op=0, kind="crash"))
        with pytest.raises(ServerUnavailable):
            proxy.get(desc)
        # snapshot/restore model the checkpoint protocol, not client traffic.
        snap = proxy.snapshot()
        proxy.restore(snap)
        assert proxy.nbytes == inner.nbytes


class TestFlaky:
    def test_flaky_raises_for_n_calls_then_recovers(self):
        inner, desc, data = _server_with_data()
        proxy = _wrap(inner, FaultPlan(server=0, op=0, kind="flaky", calls=2))
        for _ in range(2):
            with pytest.raises(TransientServerError):
                proxy.get(desc)
        np.testing.assert_array_equal(proxy.get(desc), data)


class TestSlow:
    def test_slow_adds_latency_for_n_calls(self):
        inner, desc, _ = _server_with_data()
        proxy = _wrap(
            inner, FaultPlan(server=0, op=0, kind="slow", calls=2, latency=0.03)
        )
        t0 = perf_counter()
        proxy.get(desc)
        assert perf_counter() - t0 >= 0.03
        proxy.get(desc)
        t0 = perf_counter()
        proxy.get(desc)  # third call: fault expired
        assert perf_counter() - t0 < 0.03


class TestCorrupt:
    def test_corrupt_flips_exactly_one_byte(self):
        inner, desc, data = _server_with_data()
        proxy = _wrap(inner, FaultPlan(server=0, op=0, kind="corrupt", calls=1))
        damaged = proxy.get(desc)
        clean = proxy.get(desc)  # budget spent: second read is clean
        np.testing.assert_array_equal(clean, data)
        diff = damaged.view(np.uint8) != data.view(np.uint8)
        assert int(diff.sum()) == 1

    def test_corruption_of_blob_reads_never_damages_the_stored_blob(self):
        inner = StagingServer(0)
        blob = np.arange(32, dtype=np.uint8)
        inner.put_blob("x", 1, "k", blob)
        proxy = _wrap(inner, FaultPlan(server=0, op=0, kind="corrupt", calls=1))
        damaged = proxy.get_blob("x", 1, "k")
        assert not np.array_equal(damaged, blob)
        np.testing.assert_array_equal(proxy.get_blob("x", 1, "k"), blob)

    def test_corruption_offset_reproducible_from_seed(self):
        offsets = []
        for _ in range(2):
            inner, desc, data = _server_with_data()
            proxy = FaultyServer(
                inner,
                FaultInjector([FaultPlan(server=0, op=0, kind="corrupt")]),
                rng=RngRegistry(42).get("corrupt"),
            )
            damaged = proxy.get(desc)
            diff = damaged.view(np.uint8) != data.view(np.uint8)
            offsets.append(int(np.flatnonzero(diff.reshape(-1))[0]))
        assert offsets[0] == offsets[1]


class TestOpScheduling:
    def test_fault_fires_at_planned_op_index(self):
        inner, desc, data = _server_with_data()
        proxy = _wrap(inner, FaultPlan(server=0, op=2, kind="flaky", calls=1))
        np.testing.assert_array_equal(proxy.get(desc), data)  # op 0
        np.testing.assert_array_equal(proxy.get(desc), data)  # op 1
        with pytest.raises(TransientServerError):
            proxy.get(desc)  # op 2
        assert proxy.op_count == 3


class TestInjectFaults:
    def test_wraps_every_group_server_with_shared_injector(self, group):
        injector = inject_faults(group, [FaultPlan(server=3, op=0, kind="crash")])
        if group.transport.name == "inproc":
            # Other transports inject where the servers live (e.g. inside
            # TCP server processes); the local handles stay unwrapped.
            assert all(isinstance(s, FaultyServer) for s in group.servers)
        assert all(s.injector is injector for s in group.servers)

    def test_rewrap_replaces_injector_not_proxy(self, group):
        inject_faults(group, [])
        proxies = list(group.servers)
        injector = inject_faults(group, [FaultPlan(server=0, op=0, kind="crash")])
        assert list(group.servers) == proxies
        assert all(s.injector is injector for s in group.servers)
