"""Unit tests for fault plans, the injector, and schedule generation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan, random_fault_plans
from repro.util.rng import RngRegistry


class TestFaultPlan:
    def test_valid_kinds(self):
        for kind in FAULT_KINDS:
            latency = 0.01 if kind == "slow" else 0.0
            plan = FaultPlan(server=0, op=3, kind=kind, latency=latency)
            assert plan.kind == kind

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"server": -1, "op": 0, "kind": "crash"},
            {"server": 0, "op": -2, "kind": "crash"},
            {"server": 0, "op": 0, "kind": "meteor"},
            {"server": 0, "op": 0, "kind": "flaky", "calls": -1},
            {"server": 0, "op": 0, "kind": "slow"},  # slow needs latency
            {"server": 0, "op": 0, "kind": "slow", "latency": -0.5},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultPlan(**kwargs)


class TestFaultInjector:
    def test_fires_once_at_or_after_op(self):
        inj = FaultInjector([FaultPlan(server=1, op=5, kind="crash")])
        assert inj.poll(1, 4) is None
        assert inj.poll(0, 10) is None  # wrong server
        fired = inj.poll(1, 7)  # past the op index still fires
        assert fired is not None and fired.kind == "crash"
        assert inj.poll(1, 8) is None  # one-shot
        assert inj.fired == [fired]
        assert inj.pending_count == 0

    def test_plans_delivered_in_op_order(self):
        plans = [
            FaultPlan(server=0, op=9, kind="flaky"),
            FaultPlan(server=0, op=2, kind="corrupt"),
        ]
        inj = FaultInjector(plans)
        assert inj.poll(0, 100).kind == "corrupt"
        assert inj.poll(0, 100).kind == "flaky"

    def test_schedule_and_pending_for(self):
        inj = FaultInjector()
        inj.schedule(FaultPlan(server=2, op=0, kind="crash"))
        assert [p.server for p in inj.pending_for(2)] == [2]
        assert inj.pending_for(0) == []


class TestRandomFaultPlans:
    def test_same_seed_same_schedule(self):
        a = random_fault_plans(RngRegistry(7), "faults", 4, 100, 10)
        b = random_fault_plans(RngRegistry(7), "faults", 4, 100, 10)
        assert a == b

    def test_different_seed_different_schedule(self):
        a = random_fault_plans(RngRegistry(7), "faults", 4, 100, 10)
        b = random_fault_plans(RngRegistry(8), "faults", 4, 100, 10)
        assert a != b

    def test_draws_respect_bounds(self):
        plans = random_fault_plans(
            RngRegistry(0), "faults", 3, 50, 40, max_calls=2, max_latency=0.01
        )
        assert len(plans) == 40
        for p in plans:
            assert 0 <= p.server < 3
            assert 0 <= p.op < 50
            assert p.kind in FAULT_KINDS
            assert 1 <= p.calls <= 2
            if p.kind == "slow":
                assert 0 < p.latency <= 0.01

    def test_bad_arguments_rejected(self):
        reg = RngRegistry(0)
        with pytest.raises(ConfigError):
            random_fault_plans(reg, "s", 0, 10, 1)
        with pytest.raises(ConfigError):
            random_fault_plans(reg, "s", 2, 0, 1)
        with pytest.raises(ConfigError):
            random_fault_plans(reg, "s", 2, 10, 1, kinds=("meteor",))
