"""The fault matrix: {crash, slow, flaky, corrupt} x {put, get, rollback}.

Every cell drives the *protected* client data path against an injected
staging-server fault and asserts the paper-level guarantee: results are
byte-identical to the fault-free run whenever losses stay within the
protection level, reads fail with a clean :class:`StagingDegradedError`
beyond it, and retry/backoff stays within its configured bounds.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.descriptors import ObjectDescriptor
from repro.errors import StagingDegradedError, TransientServerError
from repro.faults import FAULT_KINDS, FaultPlan, inject_faults
from repro.geometry import BBox, Domain
from repro.staging import ProtectionConfig, RetryPolicy, StagingClient, StagingGroup

# Tight backoff so the whole matrix runs in well under a second of sleeping.
FAST_RETRY = RetryPolicy(max_attempts=4, base_backoff=0.001, max_backoff=0.004)

DOMAIN = Domain((16, 16, 8))
DESC = ObjectDescriptor("field", 1, DOMAIN.bbox)
DATA = np.arange(DOMAIN.bbox.volume, dtype=np.float64).reshape(DOMAIN.bbox.shape)


def _plan(kind: str, server: int, op: int = 0, calls: int = 3) -> FaultPlan:
    latency = 0.002 if kind == "slow" else 0.0
    return FaultPlan(server=server, op=op, kind=kind, calls=calls, latency=latency)


def protected_group(**overrides) -> tuple[StagingGroup, StagingClient]:
    kwargs = dict(
        protection=ProtectionConfig(mode="rs", parity=2), retry=FAST_RETRY
    )
    kwargs.update(overrides)
    group = StagingGroup.create(DOMAIN, num_servers=4, **kwargs)
    return group, StagingClient(group, client_id="matrix")


@pytest.mark.parametrize("kind", FAULT_KINDS)
class TestFaultDuringGet:
    """Fault strikes after a clean put; the read must be byte-identical."""

    def test_get_is_byte_identical(self, kind):
        group, client = protected_group()
        client.put(DESC, DATA)
        inject_faults(group, [_plan(kind, server=1)])
        np.testing.assert_array_equal(client.get(DESC), DATA)

    def test_partial_region_get_is_byte_identical(self, kind):
        group, client = protected_group()
        client.put(DESC, DATA)
        inject_faults(group, [_plan(kind, server=2)])
        sub = DESC.with_bbox(BBox((2, 3, 1), (9, 12, 7)))
        np.testing.assert_array_equal(client.get(sub), DATA[2:9, 3:12, 1:7])


@pytest.mark.parametrize("kind", FAULT_KINDS)
class TestFaultDuringPut:
    """Fault strikes before/during the put; later reads still round-trip."""

    def test_put_then_get_round_trips(self, kind):
        group, client = protected_group()
        inject_faults(group, [_plan(kind, server=1)])
        client.put(DESC, DATA)  # may store degraded (shard in parity only)
        np.testing.assert_array_equal(client.get(DESC), DATA)


@pytest.mark.parametrize("kind", FAULT_KINDS)
class TestFaultAcrossRollback:
    """Coordinated rollback under an active fault: the restored version is
    served byte-identically and the rolled-back version is gone."""

    def test_rollback_with_active_fault(self, kind):
        group, client = protected_group()
        v1 = DESC
        v2 = DESC.with_version(2)
        client.put(v1, DATA)
        server_snaps = [s.snapshot() for s in group.servers]
        record_snap = group.records.snapshot()
        client.put(v2, DATA * 2.0)

        inject_faults(group, [_plan(kind, server=0)])
        # Restore is control-plane: it succeeds even on a crashed server
        # (the checkpoint protocol rebuilds surviving state).
        for server, snap in zip(group.servers, server_snaps):
            server.restore(snap)
        group.records.restore(record_snap)

        np.testing.assert_array_equal(client.get(v1), DATA)
        assert not client.covers(v2)


class TestBeyondProtection:
    def test_losses_beyond_parity_raise_cleanly(self):
        group, client = protected_group(
            protection=ProtectionConfig(mode="rs", parity=1)
        )
        client.put(DESC, DATA)
        inject_faults(
            group,
            [_plan("crash", server=0), _plan("crash", server=1)],
        )
        with pytest.raises(StagingDegradedError):
            client.get(DESC)

    def test_every_single_server_loss_is_survivable(self):
        for lost in range(4):
            group, client = protected_group()
            client.put(DESC, DATA)
            inject_faults(group, [_plan("crash", server=lost)])
            np.testing.assert_array_equal(client.get(DESC), DATA)

    def test_any_two_server_losses_survivable_with_parity_two(self):
        for a in range(4):
            for b in range(a + 1, 4):
                group, client = protected_group()
                client.put(DESC, DATA)
                inject_faults(group, [_plan("crash", server=a), _plan("crash", server=b)])
                np.testing.assert_array_equal(client.get(DESC), DATA)


class TestRetryBounds:
    def test_flaky_beyond_attempt_budget_propagates(self):
        # Unprotected group: no parity to hide behind, so the retry budget
        # is the only defence and its exhaustion must surface.
        group = StagingGroup.create(
            DOMAIN,
            num_servers=4,
            retry=RetryPolicy(max_attempts=2, base_backoff=0.001, max_backoff=0.002),
        )
        client = StagingClient(group)
        client.put(DESC, DATA)
        inject_faults(group, [_plan("flaky", server=1, calls=50)])
        # covers() swallows transient errors into False; the raw retry
        # wrapper is where budget exhaustion must surface.
        with pytest.raises(TransientServerError):
            client._server_op(1, lambda: group.servers[1].get(DESC))

    def test_backoff_total_is_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, base_backoff=0.001, max_backoff=0.004, jitter=0.5
        )
        rng = np.random.default_rng(0)
        total = sum(policy.backoff_for(a, rng) for a in range(1, policy.max_attempts))
        # Worst case: every backoff at cap with max jitter.
        assert total <= (policy.max_attempts - 1) * policy.max_backoff * 1.5

    def test_flaky_within_budget_recovers_and_counts_retries(self):
        group, client = protected_group()
        client.put(DESC, DATA)
        inject_faults(group, [_plan("flaky", server=1, calls=2)])
        t0 = perf_counter()
        np.testing.assert_array_equal(client.get(DESC), DATA)
        # 2 transient errors -> at most 2 backoffs at <= max_backoff * 1.5.
        assert perf_counter() - t0 < 2.0


class TestDeterministicSchedules:
    def test_same_seed_reproduces_health_outcome(self):
        from repro.faults import random_fault_plans
        from repro.util.rng import RngRegistry

        states = []
        for _ in range(2):
            group, client = protected_group()
            client.put(DESC, DATA)
            plans = random_fault_plans(
                RngRegistry(123), "matrix", num_servers=4, horizon_ops=10, count=3
            )
            inject_faults(group, plans, rng=RngRegistry(123))
            try:
                client.get(DESC)
            except StagingDegradedError:
                pass
            states.append([group.health.state(i) for i in range(4)])
        assert states[0] == states[1]
