"""GC eviction under injected server faults: {crash, slow, flaky} × evict.

The satellite bugfix under test: :meth:`DataLog.evict` must distinguish
fail-stop from transient failures. A *crashed* server's fragments die with
it (written off); a *slow or flaky* server is alive and still holds its
fragments, so they go on that server's pending-eviction queue and are
retried until confirmed — never silently written off (the leak this PR
fixes), and never left fetchable after GC reports the version collected.
"""

from __future__ import annotations

import pytest

from repro.core.data_log import DataLog
from repro.core.event_queue import EventQueue
from repro.core.garbage import GarbageCollector
from repro.descriptors import ObjectDescriptor
from repro.faults import FaultPlan, inject_faults
from repro.geometry import Domain
from repro.staging import ProtectionConfig, RetryPolicy, StagingClient, StagingGroup

from tests.conftest import make_payload

FAST_RETRY = RetryPolicy(max_attempts=4, base_backoff=0.001, max_backoff=0.004)
DOMAIN = Domain((16, 16, 8))
EVICT_KINDS = ("crash", "slow", "flaky")


def _desc(version: int) -> ObjectDescriptor:
    return ObjectDescriptor("field", version, DOMAIN.bbox)


def _plan(kind: str, server: int, calls: int = 1) -> FaultPlan:
    latency = 0.002 if kind == "slow" else 0.0
    return FaultPlan(server=server, op=0, kind=kind, calls=calls, latency=latency)


def collectable_setup(versions: int = 3):
    """Group + log + gc with ``versions`` logged, all but the latest dead."""
    group = StagingGroup.create(
        DOMAIN,
        num_servers=4,
        protection=ProtectionConfig(mode="rs", parity=2),
        retry=FAST_RETRY,
    )
    client = StagingClient(group, client_id="gc-faults")
    log = DataLog(group=group)
    queues = {"ana": EventQueue(component="ana")}
    gc = GarbageCollector(log=log, queues=queues, queue_provider=queues.get)
    for v in range(versions):
        d = _desc(v)
        client.put(d, make_payload(d))
        log.record_put("field", v, d.nbytes, producer="sim", step=v)
        log.record_get("field", "ana", v)
    queues["ana"].record_checkpoint(step=versions - 1)
    log.record_get("field", "ana", versions - 1)  # rollback floor: latest
    return group, client, log, gc


def live_fragments(group, name: str, version: int) -> dict[int, int]:
    """(server_id -> fragment count) for servers that are still *live*."""
    out = {}
    for server in group.servers:
        if getattr(server, "crashed", False):
            continue
        out[server.server_id] = len(server.store.fragments(name, version))
    return out


@pytest.mark.parametrize("kind", EVICT_KINDS)
class TestEvictFaultMatrix:
    def test_collected_version_not_fetchable_after_drain(self, kind):
        group, client, log, gc = collectable_setup()
        inject_faults(group, [_plan(kind, server=1, calls=1)])
        report = gc.collect()
        assert report.versions_collected == 2
        assert log.logged_versions("field") == [2]
        # Transient kinds may leave fragments queued behind the fault; they
        # must drain to zero once the fault clears (flaky: calls exhausted).
        if log.pending_eviction_count():
            drained, _freed = log.drain_pending_evictions()
            assert drained > 0
        assert log.pending_eviction_count() == 0
        # The paper-level guarantee: after GC reports a version collected
        # (and pending work drained), no live server still serves it.
        for v in (0, 1):
            counts = live_fragments(group, "field", v)
            assert all(c == 0 for c in counts.values()), (
                f"v{v} fragments survive on live servers: {counts}"
            )
        # The retained latest version is still fully readable.
        assert client.covers(_desc(2))


class TestTransientQueuesPending:
    def test_flaky_evict_queues_not_writes_off(self):
        """The bug this PR fixes: a flaky server's fragments used to be
        written off like a crash — leaking them forever."""
        group, client, log, gc = collectable_setup()
        # Enough flaky calls that both evictions (v0, v1) fail transiently.
        inject_faults(group, [_plan("flaky", server=1, calls=2)])
        report = gc.collect()
        assert report.versions_collected == 2
        # Logically collected, but server 1's fragments are *pending*, not
        # written off — and still physically present on the flaky server.
        assert log.pending_eviction_count(1) == 2
        assert log.pending_evictions() == {1: [("field", 0), ("field", 1)]}
        for v in (0, 1):
            assert len(group.servers[1].inner.store.fragments("field", v)) > 0
        # Next pass retries: the fault budget is exhausted, so both drain.
        drained, freed = log.drain_pending_evictions()
        assert drained == 2
        assert freed > 0
        assert log.pending_eviction_count() == 0
        for v in (0, 1):
            assert len(group.servers[1].inner.store.fragments("field", v)) == 0

    def test_gc_pass_drains_pending(self):
        group, client, log, gc = collectable_setup()
        inject_faults(group, [_plan("flaky", server=2, calls=2)])
        gc.collect()
        assert log.pending_eviction_count(2) == 2
        assert gc.has_work()  # pending evictions count as GC work
        report = gc.collect_incremental()
        assert report.pending_drained == 2
        assert log.pending_eviction_count() == 0

    def test_crash_during_drain_writes_off(self):
        group, client, log, gc = collectable_setup()
        # First a transient failure queues the evictions...
        inject_faults(group, [_plan("flaky", server=1, calls=2)])
        gc.collect()
        assert log.pending_eviction_count(1) == 2
        # ...then the server fail-stops: retrying is pointless, write off.
        inject_faults(group, [_plan("crash", server=1)])
        drained, _ = log.drain_pending_evictions()
        assert drained == 0
        assert log.pending_eviction_count() == 0
        assert group.health.state(1) == "down"


class TestCrashWritesOff:
    def test_crashed_server_fragments_written_off(self):
        group, client, log, gc = collectable_setup()
        inject_faults(group, [_plan("crash", server=0)])
        report = gc.collect()
        assert report.versions_collected == 2
        # Fail-stop: nothing queued (the memory died with the server).
        assert log.pending_eviction_count() == 0
        assert group.health.state(0) == "down"
        # Survivor servers all dropped their fragments.
        for v in (0, 1):
            assert all(
                c == 0 for c in live_fragments(group, "field", v).values()
            )

    def test_rebuilt_server_drain_tolerates_missing(self):
        """ObjectNotFound during a drain counts as drained: a rebuilt
        replacement server never held the queued fragments."""
        group, client, log, gc = collectable_setup()
        inject_faults(group, [_plan("flaky", server=1, calls=2)])
        gc.collect()
        assert log.pending_eviction_count(1) == 2
        # Simulate replacement: heal the proxy and clear its store.
        group.servers[1].heal()
        group.servers[1].inner.store.clear()
        drained, _freed = log.drain_pending_evictions()
        assert drained == 2
        assert log.pending_eviction_count() == 0


class TestRecoveryWakeup:
    def test_health_recovery_wakes_collector(self):
        group, client, log, gc = collectable_setup()
        woken = []
        log.recovery_waker = lambda: woken.append(True)
        inject_faults(group, [_plan("flaky", server=1, calls=2)])
        gc.collect()
        assert log.pending_eviction_count(1) == 2
        assert group.health.state(1) != "up"  # transient failures marked
        # The server answers again: health transitions back to up and the
        # waker fires (there is pending work for that server).
        group.health.mark_success(1)
        assert woken

    def test_no_wakeup_without_pending_work(self):
        group, client, log, gc = collectable_setup()
        woken = []
        log.recovery_waker = lambda: woken.append(True)
        group.health.mark_failure(1)
        group.health.mark_success(1)
        assert not woken
