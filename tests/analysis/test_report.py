"""Tests for report formatting and the paper's reported data."""

from repro.analysis import ComparisonRow, banner, comparison_table, format_table
from repro.analysis import paper


class TestPaperData:
    def test_fig9a_keys(self):
        assert sorted(paper.FIG9A_WRITE_OVERHEAD_PCT) == [20, 40, 60, 80, 100]

    def test_fig9d_monotonic(self):
        vals = [paper.FIG9D_MEMORY_OVERHEAD_PCT[p] for p in (2, 3, 4, 5, 6)]
        assert vals == sorted(vals)

    def test_fig10_scales(self):
        assert sorted(paper.FIG10_MAX_IMPROVEMENT_PCT) == [704, 1408, 2816, 5632, 11264]
        assert paper.FIG10_MAX_IMPROVEMENT_PCT[11264] == 13.48

    def test_table3_core_sums(self):
        for total, row in paper.TABLE3_SETUP.items():
            assert row["sim"] + row["staging"] + row["analytic"] == total


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "--" in lines[1]

    def test_banner(self):
        out = banner("Title")
        assert out.splitlines()[1] == "Title"

    def test_comparison_row_cells(self):
        row = ComparisonRow("20%", 10.0, 10.2)
        cells = row.cells()
        assert cells[0] == "20%"
        assert "+10.00%" in cells[1]
        assert "+0.20" in cells[3]

    def test_comparison_row_no_paper_value(self):
        row = ComparisonRow("x", None, 5.0)
        assert row.delta is None
        assert row.cells()[1] == "—"

    def test_comparison_table_renders(self):
        out = comparison_table("Fig", [ComparisonRow("a", 1.0, 2.0)])
        assert "Fig" in out
        assert "measured" in out
