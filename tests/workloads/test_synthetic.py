"""Tests for synthetic workload builders."""

import pytest

from repro.errors import ConfigError
from repro.workloads.synthetic import (
    RUNTIME_DOMAIN,
    case1_specs,
    case2_specs,
    coupled_specs,
    s3d_specs,
)


class TestCoupledSpecs:
    def test_structure(self):
        specs = coupled_specs()
        assert [s.kind for s in specs] == ["producer", "consumer"]
        assert specs[0].name == "simulation"
        assert specs[1].name == "analytic"
        assert specs[0].variables == specs[1].variables

    def test_paper_periods(self):
        specs = coupled_specs()
        assert specs[0].checkpoint_period == 4
        assert specs[1].checkpoint_period == 5

    def test_rejects_bad_steps(self):
        with pytest.raises(ConfigError):
            coupled_specs(num_steps=0)


class TestCases:
    def test_case1_subset(self):
        specs = case1_specs(0.4)
        assert all(s.subset_fraction == 0.4 for s in specs)

    def test_case1_rejects_bad_fraction(self):
        with pytest.raises(ConfigError):
            case1_specs(0.0)

    def test_case2_periods(self):
        specs = case2_specs(3)
        assert specs[0].checkpoint_period == 3
        assert specs[1].checkpoint_period == 4

    def test_case2_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            case2_specs(0)


class TestS3DSpecs:
    def test_multi_field(self):
        specs = s3d_specs()
        assert len(specs[0].variables) == 10
        assert specs[0].name == "s3d-dns"
        assert specs[1].name == "s3d-viz"

    def test_domain_default(self):
        specs = s3d_specs()
        assert specs[0].domain == RUNTIME_DOMAIN
