"""Tests for access patterns."""

import pytest

from repro.errors import ConfigError
from repro.workloads.patterns import AccessPattern, WRITE_THEN_READ, s3d_field_set


class TestAccessPattern:
    def test_write_then_read(self):
        assert WRITE_THEN_READ.variables == ["field"]
        assert WRITE_THEN_READ.variables_at(0) == ["field"]
        assert WRITE_THEN_READ.variables_at(17) == ["field"]

    def test_frequency_filtering(self):
        p = AccessPattern("p", {"a": 1, "b": 2, "c": 4})
        assert p.variables_at(0) == ["a", "b", "c"]
        assert p.variables_at(1) == ["a"]
        assert p.variables_at(2) == ["a", "b"]

    def test_transfers_per_cycle(self):
        p = AccessPattern("p", {"a": 1, "b": 2})
        assert p.transfers_per_cycle(4) == 4 + 2

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            AccessPattern("p", {})

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigError):
            AccessPattern("p", {"a": 0})


class TestS3D:
    def test_field_set_structure(self):
        p = s3d_field_set()
        assert len(p.variables) == 10
        assert "temperature" in p.variables
        assert p.frequencies["velocity_x"] == 1
        assert p.frequencies["heat_release"] == 4

    def test_s3d_step_zero_exchanges_all(self):
        p = s3d_field_set()
        assert p.variables_at(0) == p.variables
