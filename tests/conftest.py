"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from repro.descriptors import ObjectDescriptor
from repro.geometry import BBox, Domain
from repro.staging import StagingClient, StagingGroup


#: Marker for white-box tests that reach into in-process server internals
#: (journal lists, raw store/index dicts, shared-payload identity). Those
#: structures live in another process under the wire transports (tcp, shm),
#: so the tests are skipped there — their invariants are
#: transport-independent and remain covered by the inproc lane, which
#: always runs.
requires_inproc = pytest.mark.skipif(
    os.environ.get("REPRO_TRANSPORT", "").strip().lower() in {"tcp", "shm"},
    reason="white-box test touches in-process server internals",
)


@pytest.fixture(autouse=True)
def _reap_tcp_server_processes():
    """Close any wire transports a test created but never closed.

    With ``REPRO_TRANSPORT=tcp`` (or ``shm``) every ``StagingGroup.create``
    spawns real server processes; tests (correctly) treat groups as
    throwaway values, so without this reaper a full suite run would
    accumulate hundreds of idle processes. Covers ShmTransport too — it
    registers in the same live-transport set, and ``repro.net.shm`` cannot
    be imported without ``repro.net.tcp``. Touches nothing unless the tcp
    module was actually imported.
    """
    yield
    tcp = sys.modules.get("repro.net.tcp")
    if tcp is not None:
        tcp.shutdown_all()


@pytest.fixture
def domain() -> Domain:
    """A small 3-D domain, cheap enough for exhaustive checks."""
    return Domain((16, 16, 8))


@pytest.fixture
def domain2d() -> Domain:
    return Domain((32, 32))


@pytest.fixture
def group(domain) -> StagingGroup:
    """Four empty staging servers over the small domain."""
    return StagingGroup.create(domain, num_servers=4)


@pytest.fixture
def client(group) -> StagingClient:
    return StagingClient(group, client_id="test")


def make_payload(desc: ObjectDescriptor, seed: int = 0) -> np.ndarray:
    """Deterministic payload for a descriptor (distinct per name/version)."""
    rng = np.random.default_rng(abs(hash((desc.name, desc.version, seed))) % 2**32)
    return rng.standard_normal(desc.bbox.shape).astype(desc.dtype)


@pytest.fixture
def payload_factory():
    return make_payload


def full_desc(domain: Domain, name: str = "field", version: int = 0) -> ObjectDescriptor:
    return ObjectDescriptor(name, version, domain.bbox)


@pytest.fixture
def desc(domain) -> ObjectDescriptor:
    return full_desc(domain)


@pytest.fixture
def subbox() -> BBox:
    return BBox((2, 3, 1), (10, 12, 6))
