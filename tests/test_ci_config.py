"""The CI pipeline definition is itself under test: a malformed workflow
fails silently on the forge, so parse it here where a human sees it."""

from __future__ import annotations

import pathlib

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
CI_PATH = REPO_ROOT / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow() -> dict:
    return yaml.safe_load(CI_PATH.read_text())


class TestWorkflowShape:
    def test_parses_and_has_expected_jobs(self, workflow):
        assert set(workflow["jobs"]) == {"lint", "tests", "kernels", "bench-guard"}

    def test_triggers_cover_push_and_pr(self, workflow):
        # YAML 1.1 parses the bare key `on` as boolean True.
        triggers = workflow.get("on", workflow.get(True))
        assert "push" in triggers and "pull_request" in triggers

    def test_python_matrix_versions(self, workflow):
        matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.10", "3.11", "3.12"]

    def test_matrix_job_runs_fast_lane_via_check_sh(self, workflow):
        runs = [s.get("run", "") for s in workflow["jobs"]["tests"]["steps"]]
        assert any("check.sh --fast" in r for r in runs)

    def test_bench_guard_is_advisory(self, workflow):
        assert workflow["jobs"]["bench-guard"]["continue-on-error"] is True

    def test_kernel_job_covers_corec_and_fault_matrix(self, workflow):
        runs = " ".join(s.get("run", "") for s in workflow["jobs"]["kernels"]["steps"])
        assert "tests/corec" in runs
        assert "tests/faults" in runs

    def test_setup_python_uses_pip_cache(self, workflow):
        for job in workflow["jobs"].values():
            setup = [
                s for s in job["steps"] if "setup-python" in str(s.get("uses", ""))
            ]
            assert setup, "every job pins a python version"
            assert all(s["with"].get("cache") == "pip" for s in setup)


class TestCheckScript:
    def test_flags_documented_in_usage(self):
        text = (REPO_ROOT / "scripts" / "check.sh").read_text()
        for flag in ("--fast", "--bench", "--bench-guard"):
            assert flag in text

    def test_dev_extra_pins_ci_tools(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "dev = [" in text
        assert "ruff" in text
