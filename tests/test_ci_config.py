"""The CI pipeline definition is itself under test: a malformed workflow
fails silently on the forge, so parse it here where a human sees it."""

from __future__ import annotations

import pathlib

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
CI_PATH = REPO_ROOT / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow() -> dict:
    return yaml.safe_load(CI_PATH.read_text())


class TestWorkflowShape:
    def test_parses_and_has_expected_jobs(self, workflow):
        assert set(workflow["jobs"]) == {
            "lint",
            "tests",
            "kernels",
            "transport",
            "bench-guard",
            "nightly-soak",
        }

    def test_triggers_cover_push_and_pr(self, workflow):
        # YAML 1.1 parses the bare key `on` as boolean True.
        triggers = workflow.get("on", workflow.get(True))
        assert "push" in triggers and "pull_request" in triggers

    def test_nightly_cron_trigger(self, workflow):
        triggers = workflow.get("on", workflow.get(True))
        crons = [e["cron"] for e in triggers["schedule"]]
        assert crons, "a schedule trigger drives the nightly soak lane"
        for cron in crons:
            assert len(cron.split()) == 5

    def test_python_matrix_versions(self, workflow):
        matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.10", "3.11", "3.12"]

    def test_matrix_job_runs_fast_lane_via_check_sh(self, workflow):
        runs = [s.get("run", "") for s in workflow["jobs"]["tests"]["steps"]]
        assert any("check.sh --fast" in r for r in runs)

    def test_full_lane_measures_coverage_with_floor(self, workflow):
        runs = [s.get("run", "") for s in workflow["jobs"]["tests"]["steps"]]
        full = [r for r in runs if "--cov=repro" in r]
        assert full, "the 3.12 full-suite lane measures coverage"
        assert any("--cov-fail-under=" in r for r in full)

    def test_bench_guard_is_advisory(self, workflow):
        assert workflow["jobs"]["bench-guard"]["continue-on-error"] is True

    def test_bench_guard_uploads_artifacts(self, workflow):
        steps = workflow["jobs"]["bench-guard"]["steps"]
        runs = " ".join(s.get("run", "") for s in steps)
        assert "--json" in runs and "--obs" in runs
        uploads = [s for s in steps if "upload-artifact" in str(s.get("uses", ""))]
        assert uploads, "bench deltas + obs snapshot ship as artifacts"
        paths = uploads[0]["with"]["path"]
        assert "BENCH_micro.json" in paths
        assert "obs_snapshot.json" in paths

    def test_transport_job_is_a_tcp_shm_matrix(self, workflow):
        job = workflow["jobs"]["transport"]
        assert job["strategy"]["matrix"]["transport"] == ["tcp", "shm"]
        runs = " ".join(s.get("run", "") for s in job["steps"])
        assert "--transport ${{ matrix.transport }}" in runs
        assert "tests/net" in runs
        assert "tests/staging" in runs
        assert "tests/faults" in runs
        # The shm leg must fail if any segment survives the suite.
        assert "/dev/shm/repro-shm-" in runs

    def test_nightly_soak_is_schedule_gated_and_runs_both_transports(self, workflow):
        job = workflow["jobs"]["nightly-soak"]
        assert "schedule" in job["if"]
        runs = " ".join(s.get("run", "") for s in job["steps"])
        assert "REPRO_TRANSPORT=tcp" in runs
        assert "REPRO_TRANSPORT=shm" in runs
        assert "soak_gc.py" in runs and "soak_recovery.py" in runs
        # The nightly budget must exceed the per-PR kernels-job defaults
        # (soak_gc --steps 40, soak_recovery --steps 32).
        assert "--steps 120" in runs
        assert "--steps 48" in runs
        assert "/dev/shm/repro-shm-" in runs

    def test_kernel_job_covers_corec_and_fault_matrix(self, workflow):
        runs = " ".join(s.get("run", "") for s in workflow["jobs"]["kernels"]["steps"])
        assert "tests/corec" in runs
        assert "tests/faults" in runs

    def test_setup_python_uses_pip_cache(self, workflow):
        for job in workflow["jobs"].values():
            setup = [
                s for s in job["steps"] if "setup-python" in str(s.get("uses", ""))
            ]
            assert setup, "every job pins a python version"
            assert all(s["with"].get("cache") == "pip" for s in setup)


class TestCheckScript:
    def test_flags_documented_in_usage(self):
        text = (REPO_ROOT / "scripts" / "check.sh").read_text()
        for flag in ("--fast", "--bench", "--bench-guard", "--transport"):
            assert flag in text

    def test_transport_runs_reap_stranded_servers(self):
        """The wire lanes trap INT/TERM/EXIT and kill each step's process
        group, so a cancelled CI job cannot strand server processes; the
        shm lane additionally unlinks leaked segments."""
        text = (REPO_ROOT / "scripts" / "check.sh").read_text()
        assert "trap cleanup INT TERM EXIT" in text
        assert "CHILD_PGID" in text
        assert "/dev/shm/repro-shm-*" in text

    def test_dev_extra_pins_ci_tools(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "dev = [" in text
        assert "ruff" in text
        assert "pytest-cov" in text
