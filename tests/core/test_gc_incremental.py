"""Incremental / candidate-driven GC: safety property and differential tests.

The load-bearing property (DESIGN.md §11): **GC never collects a version
that any subsequent rollback replay or unread read frontier needs.** It is
checked here over hypothesis-generated interleavings of puts, gets,
checkpoints, rollbacks and bounded collection passes, and the incremental
path is differentially tested against the full reference sweep.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.data_log import DataLog
from repro.core.event_queue import EventQueue
from repro.core.events import EventKind
from repro.core.garbage import GarbageCollector
from repro.core.interface import WorkflowStaging
from repro.descriptors import ObjectDescriptor
from repro.geometry import Domain
from repro.staging import StagingGroup

from tests.conftest import make_payload

DOMAIN = Domain((8, 8, 4))
NAMES = ("x", "y")
CONSUMERS = ("ana", "viz")


def _desc(name: str, version: int) -> ObjectDescriptor:
    return ObjectDescriptor(name, version, DOMAIN.bbox)


class Driver:
    """Drives a real WorkflowStaging through randomized op sequences."""

    def __init__(self, sequential_gets: bool = False):
        group = StagingGroup.create(DOMAIN, num_servers=4)
        self.ws = WorkflowStaging(group, auto_gc=False)
        self.ws.register("sim")
        for c in CONSUMERS:
            self.ws.register(c)
        for name in NAMES:
            for c in CONSUMERS:
                self.ws.declare_coupling(name, c)
        self.sequential_gets = sequential_gets
        self.next_version = {n: 0 for n in NAMES}
        self.put_history: dict[str, list[int]] = {n: [] for n in NAMES}
        self.step = 0

    # ------------------------------------------------------------------ ops

    def put(self, name: str) -> None:
        v = self.next_version[name]
        self.next_version[name] += 1
        d = _desc(name, v)
        self.ws.handle_put("sim", d, make_payload(d), self.step)
        self.put_history[name].append(v)
        self.step += 1

    def get(self, comp: str, name: str, pick: int) -> None:
        self._finish_replay(comp)
        frontier = self.ws.log.read_frontier(name, comp)
        if self.sequential_gets:
            # Deterministic next-unread read: identical across drivers even
            # when their retained sets differ (frontier+1 is never evicted).
            v = frontier + 1
            if v >= self.next_version[name]:
                return
        else:
            candidates = [
                v for v in self.ws.log.logged_versions(name) if v > frontier
            ]
            if not candidates:
                return
            v = candidates[pick % len(candidates)]
        self.ws.handle_get(comp, _desc(name, v), self.step)
        self.step += 1

    def check(self, comp: str, durable: bool) -> None:
        self._finish_replay(comp)
        self.ws.handle_check(comp, self.step, durable=durable)
        self.step += 1

    def restart(self, comp: str) -> None:
        """Roll a consumer back and re-execute its replay script."""
        self._finish_replay(comp)
        self.ws.handle_restart(comp, self.step)
        self.step += 1
        # A bounded pass *during* replay must respect the script's pins.
        self.ws.gc.collect_incremental(max_versions=2)
        self.check_invariant()
        self._finish_replay(comp)

    def _finish_replay(self, comp: str) -> None:
        script = self.ws.replay_script(comp)
        if script is None:
            return
        for ev in script.events[script._cursor :]:
            assert ev.op is EventKind.GET  # consumers only read
            self.ws.handle_get(comp, ev.desc, self.step)

    # ------------------------------------------------------------ invariant

    def check_invariant(self) -> None:
        log = self.ws.log
        # 1. Unread-frontier safety: every version some consumer has not
        #    read yet is still logged and fully fetchable.
        for name in NAMES:
            min_frontier = min(log.read_frontier(name, c) for c in CONSUMERS)
            retained = set(log.logged_versions(name))
            for v in self.put_history[name]:
                if v > min_frontier:
                    assert v in retained, (
                        f"{name} v{v} collected but unread "
                        f"(min frontier {min_frontier})"
                    )
        # 2. Rollback-replay safety: a restart issued *now* (even from the
        #    deepest restorable point, the durable checkpoint) must find
        #    every GET of its script servable.
        for comp in CONSUMERS:
            queue = self.ws.queues[comp]
            chk = queue.latest_checkpoint(durable_only=True)
            for ev in queue.events_after(chk):
                if ev.op is EventKind.GET:
                    key = (ev.desc.name, ev.desc.version)
                    assert key in log.records, (
                        f"{comp} replay needs {key} but it was collected"
                    )
                    assert self.ws.client.covers(ev.desc)


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(NAMES)),
        st.tuples(
            st.just("get"),
            st.sampled_from(CONSUMERS),
            st.sampled_from(NAMES),
            st.integers(0, 7),
        ),
        st.tuples(
            st.just("check"),
            st.sampled_from(("sim",) + CONSUMERS),
            st.booleans(),
        ),
        st.tuples(st.just("restart"), st.sampled_from(CONSUMERS)),
        st.tuples(st.just("gc"), st.integers(1, 3)),
        st.tuples(st.just("gc_full")),
    ),
    min_size=5,
    max_size=40,
)


def _apply(driver: Driver, op: tuple) -> bool:
    """Apply one op; returns True when a GC pass ran (check invariant)."""
    kind = op[0]
    if kind == "put":
        driver.put(op[1])
    elif kind == "get":
        driver.get(op[1], op[2], op[3])
    elif kind == "check":
        driver.check(op[1], op[2])
    elif kind == "restart":
        driver.restart(op[1])
        return True
    elif kind == "gc":
        driver.ws.gc.collect_incremental(max_versions=op[1])
        return True
    elif kind == "gc_full":
        driver.ws.gc.collect()
        return True
    return False


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops_strategy)
def test_gc_never_collects_needed_versions(ops):
    driver = Driver()
    for op in ops:
        if _apply(driver, op):
            driver.check_invariant()
    driver.ws.gc.collect()
    driver.check_invariant()


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops_strategy)
def test_incremental_converges_to_full_sweep(ops):
    """Eager bounded passes after every op end in the exact same retained
    state as one final full sweep (same versions, same byte accounting)."""
    eager = Driver(sequential_gets=True)
    lazy = Driver(sequential_gets=True)
    for op in ops:
        if op[0] in ("gc", "gc_full"):
            continue  # the drivers schedule their own collection
        _apply(eager, op)
        _apply(lazy, op)
        eager.ws.gc.collect_incremental(max_versions=1)
    # Drain whatever the tiny budgets deferred, then compare against the
    # lazy driver's single stop-the-world reference sweep.
    while eager.ws.gc.has_work():
        report = eager.ws.gc.collect_incremental()
        if report.versions_collected == 0 and report.events_trimmed == 0:
            break
    lazy.ws.gc.collect()
    for name in NAMES:
        assert eager.ws.log.logged_versions(name) == lazy.ws.log.logged_versions(name)
    assert eager.ws.log.logged_bytes() == lazy.ws.log.logged_bytes()
    for comp in ("sim",) + CONSUMERS:
        assert len(eager.ws.queues[comp]) == len(lazy.ws.queues[comp])


# --------------------------------------------------------------- unit tests


@pytest.fixture
def setup(group):
    log = DataLog(group=group)
    queues = {"sim": EventQueue(component="sim"), "ana": EventQueue(component="ana")}
    gc = GarbageCollector(log=log, queues=queues)

    def write(version):
        log.record_put("x", version, 100, producer="sim", step=version)

    def read(version):
        d = ObjectDescriptor("x", version, group.domain.bbox)
        log.record_get("x", "ana", version)
        queues["ana"].record_data(EventKind.GET, d, "", step=version)

    return log, queues, gc, write, read


class TestCandidates:
    def test_puts_and_gets_queue_candidates(self, setup):
        log, queues, gc, write, read = setup
        write(0)
        assert gc.candidate_count() == 0  # single version: nothing collectable
        write(1)
        assert gc.candidate_count() == 1
        read(0)
        assert gc.candidate_count() == 1  # deduped

    def test_budget_defers_and_requeues(self, setup):
        log, queues, gc, write, read = setup
        for v in range(6):
            write(v)
            read(v)
        queues["ana"].record_checkpoint(step=5)
        read(5)  # floor -> 5: versions 0..4 collectable
        report = gc.collect_incremental(max_versions=2)
        assert report.versions_collected == 2
        assert report.candidates_deferred == 1  # "x" re-queued
        assert gc.has_work()
        report = gc.collect_incremental()
        assert report.versions_collected == 3
        assert log.logged_versions("x") == [5]
        assert not gc.has_work()

    def test_incremental_noop_without_candidates(self, setup):
        log, queues, gc, write, read = setup
        report = gc.collect_incremental()
        assert report.versions_collected == 0
        assert report.candidates_deferred == 0


class TestMissingQueueFloor:
    """Satellite bugfix: a consumer whose queue is unresolvable must pin
    everything (floor 0), not silently drop its rollback constraint."""

    def test_unknown_queue_is_conservative(self, setup):
        log, queues, gc, write, read = setup
        log.register_consumer("x", "ghost")  # consumer with no event queue
        for v in range(4):
            write(v)
        log.record_get("x", "ghost", 3)  # frontier alone would allow 0..2
        assert gc.version_floor("x") == 0
        gc.collect()
        assert log.logged_versions("x") == [0, 1, 2, 3]

    def test_queue_provider_resolves_late_registration(self, group):
        log = DataLog(group=group)
        queues: dict[str, EventQueue] = {}
        gc = GarbageCollector(log=log, queues=queues, queue_provider=queues.get)
        log.register_consumer("x", "ana")
        for v in range(3):
            log.record_put("x", v, 100, producer="sim", step=v)
        log.record_get("x", "ana", 2)
        assert gc.version_floor("x") == 0  # queue unknown: conservative
        # The component registers *after* GC construction; the provider
        # resolves it and the real (frontier-based) floor applies.
        queues["ana"] = EventQueue(component="ana")
        queues["ana"].record_checkpoint(step=0)
        assert gc.version_floor("x") == 3
