"""Tests for pre-declared couplings (GC protection of unread versions).

Regression tests for a real race: a producer that writes and checkpoints
before the consumer's first read must not let the GC collect versions the
consumer has yet to read.
"""

import pytest

from repro.core import WorkflowStaging
from repro.descriptors import ObjectDescriptor
from repro.staging import StagingGroup

from tests.conftest import make_payload


@pytest.fixture
def staging(group):
    return WorkflowStaging(group, enable_logging=True)


class TestDeclaredCouplings:
    def test_undeclared_consumer_loses_unread_versions(self, staging, domain):
        # Without a declaration the GC treats the variable as consumerless.
        sim = staging.register("sim")
        for ts in range(3):
            sim.set_step(ts)
            d = ObjectDescriptor("field", ts, domain.bbox)
            sim.dspaces_put_with_log(d, make_payload(d))
        sim.workflow_check()  # GC fires with no known consumer
        assert staging.log.logged_versions("field") == [2]

    def test_declared_consumer_keeps_unread_versions(self, staging, domain):
        sim = staging.register("sim")
        staging.register("ana")
        staging.declare_coupling("field", "ana")
        for ts in range(3):
            sim.set_step(ts)
            d = ObjectDescriptor("field", ts, domain.bbox)
            sim.dspaces_put_with_log(d, make_payload(d))
        sim.workflow_check()
        # All versions retained: ana has read nothing yet (frontier -1).
        assert staging.log.logged_versions("field") == [0, 1, 2]

    def test_declaration_does_not_override_real_frontier(self, staging, domain):
        sim = staging.register("sim")
        ana = staging.register("ana")
        staging.declare_coupling("field", "ana")
        for ts in range(4):
            sim.set_step(ts)
            ana.set_step(ts)
            d = ObjectDescriptor("field", ts, domain.bbox)
            sim.dspaces_put_with_log(d, make_payload(d))
            ana.dspaces_get_with_log(d)
        ana.workflow_check()
        sim.workflow_check()
        # Everything consumed and checkpointed: only the latest survives.
        assert staging.log.logged_versions("field") == [3]

    def test_register_consumer_idempotent(self, staging):
        staging.log.register_consumer("x", "ana")
        staging.log.record_get("x", "ana", 5)
        staging.log.register_consumer("x", "ana")  # must not reset frontier
        assert staging.log.read_frontier("x", "ana") == 5

    def test_declared_consumer_readable_after_late_join(self, staging, domain):
        # The consumer starts reading long after the producer began; every
        # version it needs is still there.
        sim = staging.register("sim")
        ana = staging.register("ana")
        staging.declare_coupling("field", "ana")
        for ts in range(5):
            sim.set_step(ts)
            d = ObjectDescriptor("field", ts, domain.bbox)
            sim.dspaces_put_with_log(d, make_payload(d))
            if ts % 2 == 1:
                sim.workflow_check()
        for ts in range(5):
            ana.set_step(ts)
            d = ObjectDescriptor("field", ts, domain.bbox)
            r = ana.dspaces_get_with_log(d)
            assert r.served_version == ts
