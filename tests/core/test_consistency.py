"""Tests for the crash-consistency checker."""

import pytest

from repro.core.consistency import ObservationLog, verify_read_stability
from repro.errors import ConsistencyError


def reference_log():
    log = ObservationLog()
    for step in range(3):
        log.begin_step("ana", step)
        log.record("ana", step, "x", step, f"digest{step}")
    return log


class TestObservationLog:
    def test_history_order(self):
        log = reference_log()
        hist = log.history("ana")
        assert [o.version for o in hist] == [0, 1, 2]

    def test_multiple_reads_per_step_ordinal(self):
        log = ObservationLog()
        log.begin_step("c", 0)
        log.record("c", 0, "a", 0, "d1")
        log.record("c", 0, "b", 0, "d2")
        hist = log.history("c")
        assert [o.name for o in hist] == ["a", "b"]

    def test_reexecution_overwrites_slot(self):
        log = ObservationLog()
        log.begin_step("c", 0)
        log.record("c", 0, "x", 0, "first")
        log.begin_step("c", 0)  # rollback re-execution
        log.record("c", 0, "x", 0, "second")
        hist = log.history("c")
        assert len(hist) == 1
        assert hist[0].digest == "second"

    def test_components(self):
        log = reference_log()
        assert log.components() == ["ana"]


class TestVerify:
    def test_identical_passes(self):
        verify_read_stability(reference_log(), reference_log())

    def test_wrong_version_detected(self):
        run = ObservationLog()
        for step in range(3):
            run.begin_step("ana", step)
            version = step if step != 1 else 2  # stale read at step 1
            run.record("ana", step, "x", version, f"digest{version}")
        with pytest.raises(ConsistencyError, match="stale/wrong version"):
            verify_read_stability(reference_log(), run)

    def test_wrong_payload_detected(self):
        run = ObservationLog()
        for step in range(3):
            run.begin_step("ana", step)
            digest = f"digest{step}" if step != 2 else "corrupt"
            run.record("ana", step, "x", step, digest)
        with pytest.raises(ConsistencyError, match="payload"):
            verify_read_stability(reference_log(), run)

    def test_missing_reads_detected(self):
        run = ObservationLog()
        run.begin_step("ana", 0)
        run.record("ana", 0, "x", 0, "digest0")
        with pytest.raises(ConsistencyError, match="reads"):
            verify_read_stability(reference_log(), run)

    def test_unknown_component_detected(self):
        run = reference_log()
        run.begin_step("ghost", 0)
        run.record("ghost", 0, "x", 0, "d")
        with pytest.raises(ConsistencyError, match="unknown components"):
            verify_read_stability(reference_log(), run)
