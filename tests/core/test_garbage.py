"""Tests for the Garbage Collection Component."""

import pytest

from repro.core.data_log import DataLog
from repro.core.event_queue import EventQueue
from repro.core.events import EventKind
from repro.core.garbage import GarbageCollector, GCReport
from repro.descriptors import ObjectDescriptor
from repro.geometry import BBox
from repro.staging import StagingClient, StagingGroup

from tests.conftest import make_payload


def desc(version, domain):
    return ObjectDescriptor("x", version, domain.bbox)


@pytest.fixture
def setup(group):
    """Log + queues + gc with a producer 'sim' and consumer 'ana'."""
    log = DataLog(group=group)
    queues = {"sim": EventQueue(component="sim"), "ana": EventQueue(component="ana")}
    gc = GarbageCollector(log=log, queues=queues)
    client = StagingClient(group)

    def write(version):
        d = desc(version, group.domain)
        client.put(d, make_payload(d))
        log.record_put("x", version, d.nbytes, producer="sim", step=version)
        queues["sim"].record_data(EventKind.PUT, d, "", step=version)

    def read(version):
        d = desc(version, group.domain)
        log.record_get("x", "ana", version)
        queues["ana"].record_data(EventKind.GET, d, "", step=version)

    return log, queues, gc, write, read


class TestFloors:
    def test_no_consumers_floor_none(self, setup):
        log, queues, gc, write, read = setup
        write(0)
        write(1)
        assert gc.version_floor("x") is None

    def test_consumer_rollback_floor(self, setup):
        log, queues, gc, write, read = setup
        for v in range(4):
            write(v)
            read(v)
        queues["ana"].record_checkpoint(step=3)
        # Reads after the checkpoint constrain the rollback floor.
        write(4)
        read(4)
        assert gc.version_floor("x") == 4

    def test_frontier_floor_protects_unread(self, setup):
        log, queues, gc, write, read = setup
        for v in range(5):
            write(v)
        read(0)  # consumer far behind
        # Never checkpointed: a rollback could re-read v0 (replay floor 0).
        assert gc.version_floor("x") == 0
        # Checkpointing after the v0 read moves the rollback floor past it,
        # but the unread versions 1..4 are still protected by the frontier.
        queues["ana"].record_checkpoint(step=0)
        assert gc.version_floor("x") == 1
        gc.collect()
        assert log.logged_versions("x") == [1, 2, 3, 4]


class TestCollect:
    def test_collects_consumed_pre_checkpoint_versions(self, setup):
        log, queues, gc, write, read = setup
        for v in range(5):
            write(v)
            read(v)
        queues["ana"].record_checkpoint(step=3)  # rollback floor: reads after
        read(4)  # re-read v4 after ckpt -> floor 4
        report = gc.collect()
        assert log.logged_versions("x") == [4]
        assert report.versions_collected == 4
        assert report.bytes_freed > 0

    def test_never_collects_latest(self, setup):
        log, queues, gc, write, read = setup
        write(0)
        write(1)
        read(0)
        read(1)
        queues["ana"].record_checkpoint(step=9)
        gc.collect()
        assert 1 in log.logged_versions("x")

    def test_replay_pins_protect_versions(self, setup):
        log, queues, gc, write, read = setup
        for v in range(4):
            write(v)
            read(v)
        queues["ana"].record_checkpoint(step=9)
        gc.pin_replay("ana", {("x", 1)})
        gc.collect()
        assert 1 in log.logged_versions("x")
        gc.unpin_replay("ana")
        gc.collect()
        assert log.logged_versions("x") == [3]

    def test_queue_trim(self, setup):
        log, queues, gc, write, read = setup
        for v in range(3):
            write(v)
            read(v)
        queues["ana"].record_checkpoint(step=2)
        before = len(queues["ana"])
        report = gc.collect()
        assert report.events_trimmed > 0
        assert len(queues["ana"]) < before

    def test_replaying_queue_never_trimmed(self, setup):
        log, queues, gc, write, read = setup
        for v in range(3):
            write(v)
            read(v)
        queues["ana"].record_checkpoint(step=2)
        gc.pin_replay("ana", set())
        before = len(queues["ana"])
        gc.collect()
        assert len(queues["ana"]) == before

    def test_single_version_not_collected(self, setup):
        log, queues, gc, write, read = setup
        write(0)
        read(0)
        report = gc.collect()
        assert report.versions_collected == 0
        assert log.logged_versions("x") == [0]


class TestGCReport:
    def test_report_addition(self):
        total = GCReport(1, 100, 2) + GCReport(3, 50, 1)
        assert total == GCReport(4, 150, 3)


class TestObsReport:
    def test_gc_report_renders_and_empty_without_activity(self, setup):
        from repro.analysis.obs_report import gc_report

        assert gc_report(snapshot={}) == ""
        log, queues, gc, write, read = setup
        for v in (0, 1, 2):
            write(v)
            read(v)
        queues["ana"].record_checkpoint(step=2)
        read(2)
        gc.collect()
        out = gc_report()
        assert "garbage collection" in out
        assert "passes" in out
        assert "pending evictions (queued / drained / written off)" in out
