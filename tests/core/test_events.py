"""Tests for the workflow event model."""

import numpy as np
import pytest

from repro.core.events import (
    CheckpointEvent,
    DataEvent,
    EventKind,
    RecoveryEvent,
    WChkId,
    payload_digest,
)
from repro.descriptors import ObjectDescriptor
from repro.geometry import BBox


def desc(name="x", version=0):
    return ObjectDescriptor(name, version, BBox((0,), (8,)))


class TestPayloadDigest:
    def test_deterministic(self):
        a = np.arange(10.0)
        assert payload_digest(a) == payload_digest(a.copy())

    def test_sensitive_to_content(self):
        assert payload_digest(np.zeros(4)) != payload_digest(np.ones(4))

    def test_accepts_bytes(self):
        assert payload_digest(b"abc") == payload_digest(b"abc")

    def test_noncontiguous_array(self):
        base = np.arange(16.0).reshape(4, 4)
        view = base[:, ::2]
        assert payload_digest(view) == payload_digest(np.ascontiguousarray(view))


class TestWChkId:
    def test_ordering(self):
        assert WChkId("a", 0) < WChkId("a", 1) < WChkId("b", 0)

    def test_str(self):
        assert str(WChkId("sim", 3)) == "W_Chk[sim#3]"


class TestDataEvent:
    def test_kind(self):
        ev = DataEvent(component="c", seq=0, step=0, op=EventKind.PUT, desc=desc(), digest="d")
        assert ev.kind is EventKind.PUT

    def test_rejects_non_data_op(self):
        with pytest.raises(ValueError):
            DataEvent(component="c", seq=0, step=0, op=EventKind.CHECKPOINT, desc=desc())

    def test_requires_descriptor(self):
        with pytest.raises(ValueError):
            DataEvent(component="c", seq=0, step=0, op=EventKind.GET, desc=None)

    def test_matches_request(self):
        ev = DataEvent(component="c", seq=0, step=0, op=EventKind.GET, desc=desc(), digest="")
        assert ev.matches_request(EventKind.GET, desc())
        assert not ev.matches_request(EventKind.PUT, desc())
        assert not ev.matches_request(EventKind.GET, desc(version=1))
        assert not ev.matches_request(EventKind.GET, desc(name="y"))

    def test_matches_request_bbox_sensitive(self):
        ev = DataEvent(component="c", seq=0, step=0, op=EventKind.GET, desc=desc(), digest="")
        other = ObjectDescriptor("x", 0, BBox((0,), (4,)))
        assert not ev.matches_request(EventKind.GET, other)


class TestControlEvents:
    def test_checkpoint_event(self):
        ev = CheckpointEvent(component="c", seq=1, step=4, chk_id=WChkId("c", 0))
        assert ev.kind is EventKind.CHECKPOINT
        assert "W_Chk[c#0]" in str(ev)

    def test_checkpoint_requires_id(self):
        with pytest.raises(ValueError):
            CheckpointEvent(component="c", seq=1, step=4, chk_id=None)

    def test_recovery_event(self):
        ev = RecoveryEvent(component="c", seq=2, step=4, restored_chk=WChkId("c", 0))
        assert ev.kind is EventKind.RECOVERY

    def test_recovery_from_start(self):
        ev = RecoveryEvent(component="c", seq=2, step=0, restored_chk=None)
        assert ev.restored_chk is None
