"""Tests for the global user interface (Table I of the paper)."""

import numpy as np
import pytest

from repro.core import WorkflowStaging, payload_digest
from repro.descriptors import ObjectDescriptor
from repro.errors import ObjectNotFound, ReplayError, StagingError
from repro.geometry import BBox

from tests.conftest import make_payload


@pytest.fixture
def staging(group):
    return WorkflowStaging(group, enable_logging=True)


@pytest.fixture
def clients(staging):
    return staging.register("sim"), staging.register("ana")


def run_steps(staging, sim, ana, domain, steps, ana_ckpt_at=None):
    """Drive the write-then-read workload; returns observed digests."""
    digests = []
    for ts in steps:
        sim.set_step(ts)
        ana.set_step(ts)
        d = ObjectDescriptor("field", ts, domain.bbox)
        sim.dspaces_put_with_log(d, make_payload(d))
        if ana_ckpt_at is not None and ts == ana_ckpt_at:
            ana.workflow_check()
        r = ana.dspaces_get_with_log(d)
        digests.append(r.digest)
    return digests


class TestPut:
    def test_put_stores(self, staging, clients, domain):
        sim, _ = clients
        d = ObjectDescriptor("field", 0, domain.bbox)
        result = sim.dspaces_put_with_log(d, make_payload(d))
        assert result.stored and not result.suppressed
        assert result.shards > 0

    def test_put_shape_mismatch(self, staging, clients, domain):
        sim, _ = clients
        d = ObjectDescriptor("field", 0, domain.bbox)
        with pytest.raises(StagingError):
            sim.dspaces_put_with_log(d, np.zeros((2, 2)))

    def test_put_records_event_and_log(self, staging, clients, domain):
        sim, _ = clients
        d = ObjectDescriptor("field", 0, domain.bbox)
        sim.dspaces_put_with_log(d, make_payload(d))
        assert len(staging.queues["sim"]) == 1
        assert staging.log.logged_versions("field") == [0]


class TestGet:
    def test_get_roundtrip(self, staging, clients, domain):
        sim, ana = clients
        d = ObjectDescriptor("field", 0, domain.bbox)
        data = make_payload(d)
        sim.dspaces_put_with_log(d, data)
        r = ana.dspaces_get_with_log(d)
        assert np.array_equal(r.data, data)
        assert r.served_version == 0
        assert not r.replayed

    def test_get_missing_version_raises_with_logging(self, staging, clients, domain):
        _, ana = clients
        with pytest.raises(ObjectNotFound):
            ana.dspaces_get_with_log(ObjectDescriptor("field", 5, domain.bbox))

    def test_get_registers_consumer(self, staging, clients, domain):
        sim, ana = clients
        d = ObjectDescriptor("field", 0, domain.bbox)
        sim.dspaces_put_with_log(d, make_payload(d))
        ana.dspaces_get_with_log(d)
        assert staging.log.consumers_of("field") == {"ana"}


class TestCheckpointAndGC:
    def test_check_returns_unique_ids(self, staging, clients):
        sim, _ = clients
        a = sim.workflow_check()
        b = sim.workflow_check()
        assert a != b

    def test_gc_runs_on_check(self, staging, clients, domain):
        sim, ana = clients
        run_steps(staging, sim, ana, domain, range(4))
        assert staging.gc_reports == []
        sim.workflow_check()
        ana.workflow_check()
        assert len(staging.gc_reports) == 2
        # Everything consumed and checkpointed: only latest survives.
        assert staging.log.logged_versions("field") == [3]

    def test_check_during_replay_rejected(self, staging, clients, domain):
        sim, ana = clients
        run_steps(staging, sim, ana, domain, range(3), ana_ckpt_at=0)
        ana.set_step(1)
        ana.workflow_restart()
        assert ana.in_replay
        with pytest.raises(ReplayError):
            ana.workflow_check()


class TestReplay:
    def test_consumer_replay_serves_identical_bytes(self, staging, clients, domain):
        sim, ana = clients
        digests = run_steps(staging, sim, ana, domain, range(5), ana_ckpt_at=2)
        # ana fails; rolls back to its checkpoint (before step-2 read).
        ana.set_step(2)
        script = ana.workflow_restart()
        assert script.remaining == 3
        for ts in (2, 3, 4):
            ana.set_step(ts)
            d = ObjectDescriptor("field", ts, domain.bbox)
            r = ana.dspaces_get_with_log(d)
            assert r.replayed
            assert r.digest == digests[ts]
        assert not ana.in_replay

    def test_producer_replay_suppresses_puts(self, staging, clients, domain):
        sim, ana = clients
        run_steps(staging, sim, ana, domain, range(3))
        sim.workflow_check()  # producer ckpt after step 2
        sim.set_step(3)
        d3 = ObjectDescriptor("field", 3, domain.bbox)
        sim.dspaces_put_with_log(d3, make_payload(d3))
        # producer fails, rolls back to checkpoint: re-puts step 3.
        sim.workflow_restart()
        assert sim.in_replay
        result = sim.dspaces_put_with_log(d3, make_payload(d3))
        assert result.suppressed and not result.stored
        assert not sim.in_replay

    def test_replay_wrong_request_rejected(self, staging, clients, domain):
        sim, ana = clients
        run_steps(staging, sim, ana, domain, range(3), ana_ckpt_at=0)
        ana.set_step(1)
        ana.workflow_restart()
        wrong = ObjectDescriptor("field", 2, domain.bbox)  # expected v0 get
        with pytest.raises(ReplayError):
            ana.dspaces_get_with_log(wrong)

    def test_replay_nondeterministic_put_rejected(self, staging, clients, domain):
        sim, _ = clients
        d = ObjectDescriptor("field", 0, domain.bbox)
        sim.dspaces_put_with_log(d, make_payload(d))
        sim.workflow_restart()
        with pytest.raises(ReplayError, match="different bytes"):
            sim.dspaces_put_with_log(d, make_payload(d) + 1.0)

    def test_empty_script_no_replay_mode(self, staging, clients):
        sim, _ = clients
        sim.workflow_check()
        script = sim.workflow_restart()
        assert script.exhausted
        assert not sim.in_replay

    def test_restart_during_replay_rebuilds_script(self, staging, clients, domain):
        # A second failure mid-replay discards the half-consumed script and
        # restarts the window from the checkpoint.
        sim, ana = clients
        run_steps(staging, sim, ana, domain, range(3), ana_ckpt_at=0)
        first = ana.workflow_restart()
        assert first.remaining == 3  # checkpoint preceded the step-0 read
        ana.set_step(0)
        ana.dspaces_get_with_log(ObjectDescriptor("field", 0, domain.bbox))
        assert staging.replay_script("ana").remaining == 2
        second = ana.workflow_restart()  # fails again mid-replay
        assert second.remaining == len(first.events)
        # The rebuilt script replays the same window from the start.
        for ts in (0, 1, 2):
            ana.set_step(ts)
            r = ana.dspaces_get_with_log(ObjectDescriptor("field", ts, domain.bbox))
            assert r.replayed
        assert not ana.in_replay

    def test_gc_defers_to_replay_pins(self, staging, clients, domain):
        sim, ana = clients
        run_steps(staging, sim, ana, domain, range(4), ana_ckpt_at=1)
        ana.set_step(1)
        ana.workflow_restart()  # pins versions 1..3
        sim.workflow_check()  # triggers GC
        for v in (1, 2, 3):
            assert v in staging.log.logged_versions("field")


class TestNonLoggingMode:
    def test_ds_keeps_latest_only(self, group, domain):
        ws = WorkflowStaging(group, enable_logging=False)
        sim = ws.register("sim")
        for ts in range(3):
            d = ObjectDescriptor("field", ts, domain.bbox)
            sim.dspaces_put_with_log(d, make_payload(d))
        versions = {
            v for srv in group.servers for v in srv.query_versions("field")
        }
        assert versions == {2}

    def test_stale_latest_fallback(self, group, domain):
        # The paper's Fig. 2 case 1: a rolled-back reader gets the wrong
        # (latest) version because old versions were dropped.
        ws = WorkflowStaging(group, enable_logging=False)
        sim = ws.register("sim")
        ana = ws.register("ana")
        for ts in range(3):
            d = ObjectDescriptor("field", ts, domain.bbox)
            sim.dspaces_put_with_log(d, make_payload(d))
        r = ana.dspaces_get_with_log(ObjectDescriptor("field", 0, domain.bbox))
        assert r.served_version == 2  # wrong version, silently

    def test_restart_is_noop(self, group):
        ws = WorkflowStaging(group, enable_logging=False)
        sim = ws.register("sim")
        script = sim.workflow_restart()
        assert script.exhausted
        assert not sim.in_replay

    def test_check_is_accepted(self, group):
        ws = WorkflowStaging(group, enable_logging=False)
        sim = ws.register("sim")
        chk = sim.workflow_check()
        assert chk.counter == -1


class TestMetrics:
    def test_memory_and_overhead(self, staging, clients, domain):
        sim, ana = clients
        run_steps(staging, sim, ana, domain, range(4))
        d = ObjectDescriptor("field", 0, domain.bbox)
        assert staging.memory_bytes() == 4 * d.nbytes
        assert staging.logging_overhead() == pytest.approx(3.0)

    def test_unregistered_component_rejected(self, staging, domain):
        d = ObjectDescriptor("field", 0, domain.bbox)
        with pytest.raises(StagingError):
            staging.handle_put("ghost", d, make_payload(d), 0)
