"""Tests for the per-component event queue (the paper's core algorithm)."""

import pytest

from repro.core.event_queue import EventQueue
from repro.core.events import EventKind
from repro.descriptors import ObjectDescriptor
from repro.errors import ReplayError
from repro.geometry import BBox


def desc(name="x", version=0):
    return ObjectDescriptor(name, version, BBox((0,), (8,)))


def filled_queue():
    """Queue with: put v0, get v0, CHK#0, get v1, get v2."""
    q = EventQueue(component="ana")
    q.record_data(EventKind.PUT, desc(version=0), "d0", step=0)
    q.record_data(EventKind.GET, desc(version=0), "d0", step=0)
    q.record_checkpoint(step=0)
    q.record_data(EventKind.GET, desc(version=1), "d1", step=1)
    q.record_data(EventKind.GET, desc(version=2), "d2", step=2)
    return q


class TestRecording:
    def test_sequence_numbers_monotonic(self):
        q = filled_queue()
        seqs = [ev.seq for ev in q.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_checkpoint_ids_unique_per_component(self):
        q = EventQueue(component="c")
        a = q.record_checkpoint(step=0)
        b = q.record_checkpoint(step=4)
        assert a.chk_id != b.chk_id
        assert a.chk_id.component == "c"

    def test_latest_checkpoint(self):
        q = filled_queue()
        chk = q.latest_checkpoint()
        assert chk is not None
        assert chk.step == 0

    def test_latest_checkpoint_none(self):
        assert EventQueue(component="c").latest_checkpoint() is None

    def test_data_events_filter(self):
        q = filled_queue()
        assert len(q.data_events()) == 4
        assert len(q) == 5


class TestReplayScript:
    def test_script_covers_after_checkpoint(self):
        q = filled_queue()
        script = q.build_replay_script()
        assert [e.desc.version for e in script.events] == [1, 2]
        assert script.restored_chk is not None

    def test_script_without_checkpoint_covers_all(self):
        q = EventQueue(component="c")
        q.record_data(EventKind.GET, desc(version=0), "d", step=0)
        script = q.build_replay_script()
        assert script.restored_chk is None
        assert len(script.events) == 1

    def test_cursor_progression(self):
        script = filled_queue().build_replay_script()
        assert script.remaining == 2
        assert not script.exhausted
        first = script.advance()
        assert first.desc.version == 1
        script.advance()
        assert script.exhausted
        with pytest.raises(ReplayError):
            script.peek()

    def test_recovery_event_not_in_script(self):
        q = filled_queue()
        q.record_recovery(step=1, restored=None)
        script = q.build_replay_script()
        assert all(ev.kind in (EventKind.PUT, EventKind.GET) for ev in script.events)


class TestTrim:
    def test_trimmable_horizon(self):
        q = filled_queue()
        chk = q.latest_checkpoint()
        assert q.trimmable_horizon() == chk.seq

    def test_trimmable_horizon_no_checkpoint(self):
        assert EventQueue(component="c").trimmable_horizon() == 0

    def test_trim_before(self):
        q = filled_queue()
        dropped = q.trim_before(q.trimmable_horizon())
        assert len(dropped) == 2  # put v0, get v0
        assert len(q) == 3

    def test_trim_preserves_replay(self):
        q = filled_queue()
        q.trim_before(q.trimmable_horizon())
        script = q.build_replay_script()
        assert [e.desc.version for e in script.events] == [1, 2]

    def test_trim_nothing(self):
        q = filled_queue()
        assert q.trim_before(0) == []


class TestVersionFloor:
    def test_floor_after_checkpoint(self):
        q = filled_queue()
        assert q.version_floor("x") == 1

    def test_floor_no_reads_after_checkpoint(self):
        q = EventQueue(component="c")
        q.record_data(EventKind.GET, desc(version=0), "d", step=0)
        q.record_checkpoint(step=0)
        assert q.version_floor("x") is None

    def test_floor_never_checkpointed(self):
        q = EventQueue(component="c")
        q.record_data(EventKind.GET, desc(version=3), "d", step=3)
        q.record_data(EventKind.GET, desc(version=5), "d", step=5)
        assert q.version_floor("x") == 3

    def test_floor_ignores_puts(self):
        q = EventQueue(component="c")
        q.record_data(EventKind.PUT, desc(version=0), "d", step=0)
        assert q.version_floor("x") is None

    def test_floor_per_name(self):
        q = EventQueue(component="c")
        q.record_data(EventKind.GET, desc(name="a", version=2), "d", step=2)
        q.record_data(EventKind.GET, desc(name="b", version=7), "d", step=7)
        assert q.version_floor("a") == 2
        assert q.version_floor("b") == 7
        assert q.version_floor("zzz") is None
