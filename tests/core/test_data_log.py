"""Tests for the Data Logging Component."""

import numpy as np
import pytest

from repro.core.data_log import DataLog
from repro.descriptors import ObjectDescriptor
from repro.errors import ObjectNotFound
from repro.staging import StagingClient, StagingGroup

from tests.conftest import make_payload


@pytest.fixture
def log(group):
    return DataLog(group=group)


def put_version(group, log, version, nbytes=None):
    d = ObjectDescriptor("x", version, group.domain.bbox)
    StagingClient(group).put(d, make_payload(d))
    log.record_put("x", version, d.nbytes, producer="sim", step=version)
    return d


class TestRecording:
    def test_record_put(self, group, log):
        put_version(group, log, 0)
        assert log.logged_versions("x") == [0]
        assert log.latest_logged("x") == 0

    def test_record_get_frontier(self, log):
        log.record_get("x", "ana", 3)
        log.record_get("x", "ana", 1)  # regression must not lower frontier
        assert log.read_frontier("x", "ana") == 3

    def test_frontier_unknown(self, log):
        assert log.read_frontier("x", "nobody") == -1

    def test_consumers_of(self, log):
        log.record_get("x", "ana", 0)
        log.record_get("x", "viz", 0)
        assert log.consumers_of("x") == {"ana", "viz"}
        assert log.consumers_of("y") == set()

    def test_names(self, group, log):
        put_version(group, log, 0)
        log.record_put("y", 0, 10, producer="sim", step=0)
        assert log.names() == ["x", "y"]


class TestEviction:
    def test_evict_frees_group_bytes(self, group, log):
        d = put_version(group, log, 0)
        before = group.total_bytes
        freed = log.evict("x", 0)
        assert freed == d.nbytes == before - group.total_bytes

    def test_evict_unlogged_raises(self, log):
        with pytest.raises(ObjectNotFound):
            log.evict("x", 99)

    def test_evict_removes_record(self, group, log):
        put_version(group, log, 0)
        log.evict("x", 0)
        assert log.logged_versions("x") == []


class TestAccounting:
    def test_logged_bytes(self, group, log):
        d0 = put_version(group, log, 0)
        d1 = put_version(group, log, 1)
        assert log.logged_bytes() == d0.nbytes + d1.nbytes

    def test_baseline_is_latest_only(self, group, log):
        put_version(group, log, 0)
        d1 = put_version(group, log, 1)
        assert log.baseline_bytes() == d1.nbytes

    def test_baseline_multiple_names(self, group, log):
        put_version(group, log, 0)
        log.record_put("y", 0, 100, producer="sim", step=0)
        assert log.baseline_bytes() == log.logged_bytes()

    def test_overhead_zero_when_single_version(self, group, log):
        put_version(group, log, 0)
        assert log.logging_overhead() == 0.0

    def test_overhead_grows_with_versions(self, group, log):
        for v in range(4):
            put_version(group, log, v)
        assert log.logging_overhead() == pytest.approx(3.0)

    def test_overhead_empty(self, log):
        assert log.logging_overhead() == 0.0
