"""Tests for the global domain and block decomposition."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.bbox import BBox
from repro.geometry.domain import Domain, balanced_process_grid, grid_decompose


class TestDomain:
    def test_basic(self):
        d = Domain((512, 512, 256))
        assert d.ndim == 3
        assert d.volume == 512 * 512 * 256
        assert d.bbox == BBox((0, 0, 0), (512, 512, 256))

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            Domain(())

    def test_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            Domain((4, 0))

    def test_subset_full(self):
        d = Domain((10, 10))
        assert d.subset(1.0) == d.bbox

    def test_subset_fraction_volume(self):
        d = Domain((100, 50))
        sub = d.subset(0.2)
        assert sub.volume == pytest.approx(0.2 * d.volume, rel=0.05)

    def test_subset_minimum_one_plane(self):
        d = Domain((10, 10))
        assert d.subset(0.001).volume == 10  # at least one x-plane

    def test_subset_rejects_bad_fraction(self):
        with pytest.raises(GeometryError):
            Domain((4,)).subset(0.0)
        with pytest.raises(GeometryError):
            Domain((4,)).subset(1.5)


class TestBalancedGrid:
    def test_exact_cube(self):
        assert balanced_process_grid(8, 3) == (2, 2, 2)

    def test_paper_simulation_grid(self):
        # Table II: 256 simulation cores as 8 x 8 x 4.
        assert balanced_process_grid(256, 3) == (8, 8, 4)

    def test_prime(self):
        assert balanced_process_grid(7, 2) == (7, 1)

    def test_one_dim(self):
        assert balanced_process_grid(12, 1) == (12,)

    def test_product_invariant(self):
        for n in (1, 2, 6, 30, 64, 100, 97):
            for ndim in (1, 2, 3):
                grid = balanced_process_grid(n, ndim)
                assert math.prod(grid) == n

    def test_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            balanced_process_grid(0, 2)
        with pytest.raises(GeometryError):
            balanced_process_grid(4, 0)


class TestGridDecompose:
    def test_even_split(self):
        blocks = grid_decompose(BBox((0, 0), (4, 4)), (2, 2))
        assert len(blocks) == 4
        assert blocks[0] == BBox((0, 0), (2, 2))
        assert blocks[-1] == BBox((2, 2), (4, 4))

    def test_remainder_distribution(self):
        blocks = grid_decompose(BBox((0,), (10,)), (3,))
        assert [b.shape[0] for b in blocks] == [4, 3, 3]

    def test_covers_domain_exactly(self):
        box = BBox((0, 0, 0), (7, 5, 3))
        blocks = grid_decompose(box, (2, 3, 1))
        assert sum(b.volume for b in blocks) == box.volume
        for i in range(len(blocks)):
            for j in range(i + 1, len(blocks)):
                assert not blocks[i].intersects(blocks[j])

    def test_offset_box(self):
        blocks = grid_decompose(BBox((10,), (20,)), (2,))
        assert blocks == [BBox((10,), (15,)), BBox((15,), (20,))]

    def test_rejects_rank_mismatch(self):
        with pytest.raises(GeometryError):
            grid_decompose(BBox((0, 0), (4, 4)), (2,))

    def test_rejects_oversized_grid(self):
        with pytest.raises(GeometryError):
            grid_decompose(BBox((0,), (3,)), (4,))

    def test_rejects_nonpositive_grid(self):
        with pytest.raises(GeometryError):
            grid_decompose(BBox((0,), (3,)), (0,))

    @settings(max_examples=60, deadline=None)
    @given(
        st.tuples(st.integers(1, 20), st.integers(1, 20)),
        st.tuples(st.integers(1, 4), st.integers(1, 4)),
    )
    def test_property_partition(self, shape, grid):
        if any(g > s for g, s in zip(grid, shape)):
            return
        box = BBox.from_shape(shape)
        blocks = grid_decompose(box, grid)
        assert len(blocks) == grid[0] * grid[1]
        assert sum(b.volume for b in blocks) == box.volume
