"""Tests for Morton and Hilbert space-filling curves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.sfc import (
    bits_for_extent,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
)


class TestBitsForExtent:
    def test_values(self):
        assert bits_for_extent(1) == 1
        assert bits_for_extent(2) == 1
        assert bits_for_extent(3) == 2
        assert bits_for_extent(512) == 9
        assert bits_for_extent(513) == 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bits_for_extent(0)


class TestMorton:
    def test_2d_order(self):
        # Classic Z pattern for 2x2.
        codes = {morton_encode((x, y), 1): (x, y) for x in range(2) for y in range(2)}
        assert codes[0] == (0, 0)
        assert codes[3] == (1, 1)

    def test_roundtrip_exhaustive_3d(self):
        for code in range(8**2):
            assert morton_encode(morton_decode(code, 3, 2), 2) == code

    def test_bijective_2d(self):
        seen = {morton_encode((x, y), 3) for x in range(8) for y in range(8)}
        assert seen == set(range(64))

    def test_rejects_out_of_range_coord(self):
        with pytest.raises(ValueError):
            morton_encode((4,), 2)

    def test_rejects_out_of_range_code(self):
        with pytest.raises(ValueError):
            morton_decode(64, 2, 3 // 1 - 2 + 2)  # 64 out of range for 2x3 bits


class TestHilbert:
    def test_roundtrip_exhaustive_2d(self):
        for code in range(64):
            assert hilbert_encode(hilbert_decode(code, 2, 3), 3) == code

    def test_roundtrip_exhaustive_3d(self):
        for code in range(512):
            assert hilbert_encode(hilbert_decode(code, 3, 3), 3) == code

    def test_bijective(self):
        pts = {hilbert_decode(c, 2, 3) for c in range(64)}
        assert len(pts) == 64

    def test_adjacency_2d(self):
        # The defining Hilbert property: consecutive codes are grid
        # neighbours (L1 distance exactly 1).
        prev = hilbert_decode(0, 2, 4)
        for code in range(1, 256):
            cur = hilbert_decode(code, 2, 4)
            assert sum(abs(a - b) for a, b in zip(cur, prev)) == 1
            prev = cur

    def test_adjacency_3d(self):
        prev = hilbert_decode(0, 3, 2)
        for code in range(1, 64):
            cur = hilbert_decode(code, 3, 2)
            assert sum(abs(a - b) for a, b in zip(cur, prev)) == 1
            prev = cur

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_encode((8, 0), 3)
        with pytest.raises(ValueError):
            hilbert_decode(-1, 2, 3)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 2**12 - 1))
    def test_property_roundtrip_4d(self, code):
        assert hilbert_encode(hilbert_decode(code, 4, 3), 3) == code

    @settings(max_examples=200, deadline=None)
    @given(st.tuples(st.integers(0, 31), st.integers(0, 31), st.integers(0, 31)))
    def test_property_roundtrip_coords(self, pt):
        assert hilbert_decode(hilbert_encode(pt, 5), 3, 5) == pt
