"""Tests for N-d bounding boxes, including property-based ones."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.bbox import BBox


def boxes(ndim=3, lo=0, hi=24):
    """Hypothesis strategy for valid ndim boxes within [lo, hi)."""

    def build(draw):
        coords = []
        for _ in range(ndim):
            a = draw(st.integers(lo, hi - 1))
            b = draw(st.integers(a + 1, hi))
            coords.append((a, b))
        return BBox(tuple(c[0] for c in coords), tuple(c[1] for c in coords))

    return st.composite(lambda draw: build(draw))()


class TestConstruction:
    def test_basic(self):
        b = BBox((0, 0), (4, 5))
        assert b.shape == (4, 5)
        assert b.volume == 20
        assert b.ndim == 2

    def test_from_shape(self):
        b = BBox.from_shape((3, 4, 5))
        assert b.lo == (0, 0, 0)
        assert b.hi == (3, 4, 5)

    def test_from_shape_with_origin(self):
        b = BBox.from_shape((2, 2), origin=(5, 6))
        assert b.lo == (5, 6)
        assert b.hi == (7, 8)

    def test_rejects_empty_extent(self):
        with pytest.raises(GeometryError):
            BBox((0, 0), (0, 4))

    def test_rejects_inverted(self):
        with pytest.raises(GeometryError):
            BBox((3,), (1,))

    def test_rejects_rank_mismatch(self):
        with pytest.raises(GeometryError):
            BBox((0, 0), (1,))

    def test_rejects_zero_dim(self):
        with pytest.raises(GeometryError):
            BBox((), ())

    def test_numpy_ints_normalised(self):
        b = BBox(tuple(np.int64([0, 0])), tuple(np.int64([2, 2])))
        assert isinstance(b.lo[0], int)
        assert hash(b) == hash(BBox((0, 0), (2, 2)))

    def test_hashable_and_equal(self):
        assert BBox((0,), (5,)) == BBox((0,), (5,))
        assert len({BBox((0,), (5,)), BBox((0,), (5,))}) == 1


class TestPredicates:
    def test_contains_point(self):
        b = BBox((1, 1), (4, 4))
        assert b.contains_point((1, 1))
        assert b.contains_point((3, 3))
        assert not b.contains_point((4, 3))  # hi is exclusive

    def test_contains_point_rank_check(self):
        with pytest.raises(GeometryError):
            BBox((0,), (2,)).contains_point((0, 0))

    def test_contains_box(self):
        outer = BBox((0, 0), (10, 10))
        assert outer.contains(BBox((2, 2), (5, 5)))
        assert outer.contains(outer)
        assert not outer.contains(BBox((5, 5), (11, 9)))

    def test_intersects(self):
        a = BBox((0, 0), (5, 5))
        assert a.intersects(BBox((4, 4), (8, 8)))
        assert not a.intersects(BBox((5, 0), (8, 5)))  # touching edge: disjoint

    def test_intersect_result(self):
        a = BBox((0, 0), (5, 5))
        b = BBox((3, 2), (8, 4))
        assert a.intersect(b) == BBox((3, 2), (5, 4))

    def test_intersect_disjoint_none(self):
        assert BBox((0,), (2,)).intersect(BBox((2,), (4,))) is None

    def test_union_bounds(self):
        a = BBox((0, 4), (2, 6))
        b = BBox((1, 0), (5, 2))
        assert a.union_bounds(b) == BBox((0, 0), (5, 6))


class TestOperations:
    def test_translate(self):
        b = BBox((1, 1), (3, 3)).translate((10, -1))
        assert b == BBox((11, 0), (13, 2))

    def test_translate_rank_check(self):
        with pytest.raises(GeometryError):
            BBox((0,), (1,)).translate((1, 2))

    def test_slices_absolute(self):
        arr = np.arange(100).reshape(10, 10)
        b = BBox((2, 3), (5, 7))
        assert np.array_equal(arr[b.slices()], arr[2:5, 3:7])

    def test_slices_within(self):
        outer = BBox((2, 2), (8, 8))
        inner = BBox((3, 4), (5, 6))
        assert inner.slices(outer) == (slice(1, 3), slice(2, 4))

    def test_slices_within_requires_containment(self):
        with pytest.raises(GeometryError):
            BBox((0, 0), (4, 4)).slices(BBox((1, 1), (3, 3)))

    def test_corners_count(self):
        corners = list(BBox((0, 0, 0), (2, 3, 4)).corners())
        assert len(corners) == 8
        assert (0, 0, 0) in corners
        assert (1, 2, 3) in corners

    def test_split(self):
        left, right = BBox((0,), (10,)).split(0, 4)
        assert left == BBox((0,), (4,))
        assert right == BBox((4,), (10,))

    def test_split_requires_interior_point(self):
        with pytest.raises(GeometryError):
            BBox((0,), (10,)).split(0, 0)
        with pytest.raises(GeometryError):
            BBox((0,), (10,)).split(0, 10)

    def test_subtract_disjoint(self):
        b = BBox((0, 0), (4, 4))
        assert b.subtract(BBox((10, 10), (12, 12))) == [b]

    def test_subtract_covering(self):
        b = BBox((1, 1), (3, 3))
        assert b.subtract(BBox((0, 0), (4, 4))) == []

    def test_subtract_volume(self):
        b = BBox((0, 0), (10, 10))
        pieces = b.subtract(BBox((2, 3), (5, 8)))
        assert sum(p.volume for p in pieces) == 100 - 15

    def test_str(self):
        assert str(BBox((0, 1), (2, 3))) == "BBox[0:2, 1:3]"


class TestSubtractProperties:
    @settings(max_examples=150, deadline=None)
    @given(boxes(), boxes())
    def test_subtract_partitions_volume(self, a, b):
        pieces = a.subtract(b)
        overlap = a.intersect(b)
        expect = a.volume - (overlap.volume if overlap else 0)
        assert sum(p.volume for p in pieces) == expect

    @settings(max_examples=150, deadline=None)
    @given(boxes(), boxes())
    def test_subtract_pieces_disjoint_from_b(self, a, b):
        for piece in a.subtract(b):
            assert not piece.intersects(b)
            assert a.contains(piece)

    @settings(max_examples=100, deadline=None)
    @given(boxes(), boxes())
    def test_subtract_pieces_pairwise_disjoint(self, a, b):
        pieces = a.subtract(b)
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                assert not pieces[i].intersects(pieces[j])

    @settings(max_examples=150, deadline=None)
    @given(boxes(), boxes())
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @settings(max_examples=150, deadline=None)
    @given(boxes())
    def test_self_intersection_identity(self, a):
        assert a.intersect(a) == a
        assert a.contains(a)
