"""RPC envelope shapes and the staging-error wire mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DecodingError,
    ObjectNotFound,
    ServerUnavailable,
    StagingDegradedError,
    StagingError,
    TransientServerError,
    VersionConflict,
)
from repro.net import (
    ProtocolError,
    decode_message,
    encode_request,
    encode_response,
    error_kind_for,
    raise_wire_error,
)
from repro.net.protocol import WIRE_ERRORS, batch_item_result, encode_batch, encode_error


class TestEnvelopes:
    def test_request_roundtrip(self):
        msg = decode_message(encode_request("get", (("x", 3),)))
        assert msg == ("req", "get", (("x", 3),))

    def test_response_roundtrip(self):
        assert decode_message(encode_response([1, 2])) == ("ok", [1, 2])

    def test_batch_roundtrip(self):
        reqs = [("req", "put", (1,)), ("req", "get", (2,))]
        assert decode_message(encode_batch(reqs)) == ("batch", reqs)

    @pytest.mark.parametrize(
        "raw",
        [
            ("req", "get"),  # missing args
            ("req", 7, ()),  # non-str op
            ("req", "get", [1]),  # args not a tuple
            ("ok",),
            ("err", "transient", "not-an-int", "m"),
            ("batch", ("req",)),  # payload not a list
            ("mystery", 1),
            [1, 2, 3],  # not a tuple at all
            (),
        ],
    )
    def test_malformed_envelopes_rejected(self, raw):
        from repro.net import encode

        with pytest.raises(ProtocolError):
            decode_message(encode(raw))


class TestErrorMapping:
    @pytest.mark.parametrize(
        "exc,kind",
        [
            (ObjectNotFound("x"), "not_found"),
            (VersionConflict("x"), "version_conflict"),
            (ServerUnavailable(2, "down"), "unavailable"),
            (TransientServerError(2, "blip"), "transient"),
            (StagingDegradedError("deg"), "degraded"),
            (DecodingError("bad shards"), "decoding"),
            (StagingError("generic"), "staging"),
        ],
    )
    def test_every_wire_error_kind_roundtrips_typed(self, exc, kind):
        """Each staging exception crosses the wire and re-raises as itself."""
        assert error_kind_for(exc) == kind
        msg = decode_message(encode_error(exc, server_id=5))
        assert msg[0] == "err" and msg[1] == kind
        with pytest.raises(type(exc)) as ei:
            raise_wire_error(msg[1], msg[2], msg[3])
        assert type(ei.value) is type(exc)  # exact type, not a parent

    def test_server_scoped_errors_keep_their_server_id(self):
        msg = decode_message(encode_error(TransientServerError(7, "blip"), server_id=0))
        assert msg[2] == 7  # the exception's own id wins over the dispatcher's
        with pytest.raises(TransientServerError) as ei:
            raise_wire_error(msg[1], msg[2], msg[3])
        assert ei.value.server_id == 7

    def test_unknown_subclass_maps_to_nearest_ancestor(self):
        class Weird(ObjectNotFound):
            pass

        assert error_kind_for(Weird("gone")) == "not_found"

    def test_unknown_kind_degrades_to_staging_error(self):
        with pytest.raises(StagingError):
            raise_wire_error("future-kind", 0, "??")

    def test_wire_errors_table_is_leaf_first(self):
        """A subclass must never be shadowed by an ancestor earlier in the table."""
        kinds = list(WIRE_ERRORS.values())
        for i, cls in enumerate(kinds):
            for ancestor in kinds[:i]:
                assert not issubclass(cls, ancestor), (cls, ancestor)


class TestBatchItems:
    def test_ok_slot(self):
        assert batch_item_result(value=42) == ("ok", 42)

    def test_error_slot(self):
        slot = batch_item_result(exc=ObjectNotFound("x@3"), server_id=1)
        assert slot[0] == "err" and slot[1] == "not_found"


@settings(max_examples=100, deadline=None)
@given(
    st.text(min_size=1, max_size=12),
    st.lists(st.integers(-100, 100), max_size=5).map(tuple),
)
def test_request_envelope_property(op, args):
    assert decode_message(encode_request(op, (args,))) == ("req", op, (args,))
