"""Property + unit tests for the shm segment allocator and codec hooks.

Everything here runs in one process: the pool, writer, and resolver are
plain objects, and ``ServerSegments`` attaches to segments this process
created — same syscalls the real server process makes, no spawn cost.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.codec import SegRef, decode, encode
from repro.net.frames import ProtocolError
from repro.net.shm import (
    HEADER_BYTES,
    SHM_PREFIX,
    SegmentPool,
    ServerSegments,
    _SegmentWriter,
    leaked_segment_names,
    oob_payload_bytes,
)

SLAB = 1 << 14  # small slabs keep the property suite fast


def make_pool(capacity_slabs: int = 8) -> SegmentPool:
    return SegmentPool(capacity_bytes=capacity_slabs * SLAB, min_slab=SLAB)


# ---------------------------------------------------------------- properties


class TestAllocatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("acquire"), st.integers(1, 3 * SLAB)),
                st.tuples(st.just("release"), st.integers(0, 63)),
                st.tuples(st.just("retire"), st.integers(0, 63)),
            ),
            max_size=40,
        )
    )
    def test_interleavings_never_double_grant(self, ops):
        """Any acquire/release/retire interleaving: a slab is never handed
        to two owners at once, names are never duplicated among live
        grants, and close() always reaps every segment."""
        pool = make_pool()
        outstanding: list = []
        created: set[str] = set()
        try:
            for op, arg in ops:
                if op == "acquire":
                    slab = pool.acquire(arg)
                    if slab is not None:
                        assert slab not in outstanding, "double-granted slab"
                        assert slab.name not in {s.name for s in outstanding}
                        assert slab.capacity >= arg
                        outstanding.append(slab)
                        created.add(slab.name)
                elif outstanding:
                    slab = outstanding.pop(arg % len(outstanding))
                    (pool.release if op == "release" else pool.retire)(slab)
        finally:
            pool.close()
        assert pool.live_bytes == 0
        assert not (created & set(leaked_segment_names()))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4))
    def test_release_bumps_generation_and_restamps(self, rounds):
        pool = make_pool()
        try:
            generations = []
            for _ in range(rounds):
                slab = pool.acquire(SLAB)
                generations.append(slab.generation)
                # The header stamp always matches the live generation.
                import struct

                magic, stamp = struct.unpack_from("!IQ", slab.mem.buf, 0)
                assert stamp == slab.generation
                pool.release(slab)
            assert generations == list(range(rounds))
        finally:
            pool.close()

    def test_exhaustion_returns_none_then_recovers(self):
        pool = make_pool(capacity_slabs=2)
        try:
            a = pool.acquire(SLAB)
            b = pool.acquire(SLAB)
            assert a is not None and b is not None
            assert pool.acquire(SLAB) is None  # exhausted → wire fallback
            pool.release(a)
            c = pool.acquire(SLAB)
            assert c is a  # recycled, not re-created
            assert c.generation == 1  # recycle bumped the generation
        finally:
            pool.close()

    def test_oversize_request_past_capacity_returns_none(self):
        pool = make_pool(capacity_slabs=2)
        try:
            assert pool.acquire(4 * SLAB) is None
            assert pool.acquire(0) is None
        finally:
            pool.close()


# ------------------------------------------------------------- generations


class TestGenerationValidation:
    def test_stale_generation_rejected_by_server_side(self):
        pool = make_pool()
        segments = ServerSegments()
        try:
            slab = pool.acquire(SLAB)
            writer = _SegmentWriter(slab)
            arr = np.arange(SLAB // 8, dtype=np.float64)
            ref = writer(arr)
            assert ref is not None
            # Current generation resolves to the exact bytes, zero-copy.
            view = segments.resolve(ref)
            np.testing.assert_array_equal(view, arr)
            # Recycle the slab: its generation bumps, the old ref is stale.
            pool.release(slab)
            slab2 = pool.acquire(SLAB)
            assert slab2 is slab and slab2.generation == ref.generation + 1
            with pytest.raises(ProtocolError):
                segments.resolve(ref)
            pool.release(slab2)
        finally:
            segments.close()
            pool.close()

    def test_unknown_segment_and_bad_bounds_rejected(self):
        segments = ServerSegments()
        try:
            ghost = SegRef(SHM_PREFIX + "nope", 0, 0, 64, "<f8", (8,))
            with pytest.raises(ProtocolError):
                segments.resolve(ghost)
            pool = make_pool()
            try:
                slab = pool.acquire(SLAB)
                beyond = SegRef(slab.name, slab.generation, 0, 10 * SLAB, "|u1", (10 * SLAB,))
                with pytest.raises(ProtocolError):
                    segments.resolve(beyond)
                pool.release(slab)
            finally:
                pool.close()
        finally:
            segments.close()

    def test_reply_resolver_rejects_refs_to_ungranted_segments(self):
        from repro.net.shm import _ResponseResolver

        pool = make_pool()
        try:
            slab = pool.acquire(SLAB)
            resolver = _ResponseResolver(pool, slab)
            other = SegRef("repro-shm-other", slab.generation, 0, 64, "<f8", (8,))
            with pytest.raises(ProtocolError):
                resolver(other)
            stale = SegRef(slab.name, slab.generation + 7, 0, 64, "<f8", (8,))
            with pytest.raises(ProtocolError):
                resolver(stale)
            pool.release(slab)
        finally:
            pool.close()


# ------------------------------------------------------------------ leases


class TestLeases:
    def test_recycle_waits_for_live_views(self):
        pool = make_pool()
        try:
            slab = pool.acquire(SLAB)
            writer = _SegmentWriter(slab)
            src = np.arange(1024, dtype=np.float64)
            ref = writer(src)
            view = pool.lease_view(slab, ref)
            np.testing.assert_array_equal(view, src)
            pool.release(slab)
            # The slab is draining, not free: acquiring now must create a
            # NEW segment, never recycle under the live view.
            other = pool.acquire(SLAB)
            assert other is not slab
            pool.release(other)
            del view
            recycled = pool.acquire(SLAB)
            assert recycled in (slab, other)  # both free again
            pool.release(recycled)
        finally:
            pool.close()

    def test_retired_slab_destroyed_after_last_lease_dies(self):
        pool = make_pool()
        slab = pool.acquire(SLAB)
        writer = _SegmentWriter(slab)
        ref = writer(np.zeros(1024, dtype=np.float64))
        view = pool.lease_view(slab, ref)
        name = slab.name
        pool.retire(slab)  # wire fault while a view is checked out
        assert slab.mem is not None  # destruction deferred for the view
        del view
        # The next pool operation drains the pending lease and unlinks.
        fresh = pool.acquire(SLAB)
        assert fresh is not slab
        assert name not in leaked_segment_names()
        pool.release(fresh)
        pool.close()

    def test_slab_view_survives_pool_close(self):
        pool = make_pool()
        slab = pool.acquire(SLAB)
        writer = _SegmentWriter(slab)
        src = np.arange(512, dtype=np.float64)
        ref = writer(src)
        view = pool.lease_view(slab, ref)
        pool.close()
        # The name is gone from /dev/shm immediately, but the mapping (and
        # therefore the view's bytes) survives until the view dies.
        assert slab.name not in leaked_segment_names()
        np.testing.assert_array_equal(view, src)


# ------------------------------------------------------- writer/sink/codec


class TestSegmentWriter:
    def test_writer_places_aligned_and_round_trips_through_codec(self):
        pool = make_pool()
        segments = ServerSegments()
        try:
            slab = pool.acquire(SLAB)
            writer = _SegmentWriter(slab)
            a = np.arange(640, dtype=np.float64)  # 5120 B ≥ MIN_ARRAY_BYTES
            b = np.arange(513, dtype=np.float64).reshape(27, 19)[:, ::2]  # strided
            payload = encode({"a": a, "b": np.ascontiguousarray(b), "n": 7},
                             array_sink=writer)
            decoded = decode(payload, array_source=segments.resolve)
            np.testing.assert_array_equal(decoded["a"], a)
            np.testing.assert_array_equal(decoded["b"], b)
            assert decoded["n"] == 7
            assert writer.placed_bytes >= a.nbytes
            pool.release(slab)
        finally:
            segments.close()
            pool.close()

    def test_small_arrays_stay_inline(self):
        pool = make_pool()
        try:
            slab = pool.acquire(SLAB)
            writer = _SegmentWriter(slab)
            tiny = np.arange(8, dtype=np.float64)  # 64 B < MIN_ARRAY_BYTES
            assert writer(tiny) is None
            assert writer.placed_bytes == 0
            pool.release(slab)
        finally:
            pool.close()

    def test_writer_overflow_falls_back_to_wire(self):
        pool = make_pool()
        try:
            slab = pool.acquire(1)  # rounds up to one SLAB
            writer = _SegmentWriter(slab)
            big = np.zeros(2 * SLAB, dtype=np.uint8)
            assert writer(big) is None  # doesn't fit: inline on the wire
            pool.release(slab)
        finally:
            pool.close()

    def test_oob_payload_bytes_walks_request_shapes(self):
        big = np.zeros((64, 64), dtype=np.float64)  # 32 KiB
        tiny = np.zeros(4, dtype=np.float64)
        assert oob_payload_bytes(big) >= big.nbytes
        assert oob_payload_bytes(tiny) == 0
        assert oob_payload_bytes(([big, tiny], {"k": big})) >= 2 * big.nbytes
        assert oob_payload_bytes("nope") == 0


class TestHeaderLayout:
    def test_payload_region_starts_after_header(self):
        pool = make_pool()
        try:
            slab = pool.acquire(SLAB)
            writer = _SegmentWriter(slab)
            arr = np.full(1024, 7.5, dtype=np.float64)
            ref = writer(arr)
            assert ref.offset % 64 == 0
            # Payload bytes land after the 64-byte header, leaving the
            # magic/generation stamp intact.
            raw = bytes(slab.mem.buf[HEADER_BYTES + ref.offset:
                                     HEADER_BYTES + ref.offset + 16])
            assert raw == arr[:2].tobytes()
            pool.release(slab)
        finally:
            pool.close()
