"""End-to-end tests against real TCP server processes.

These always run over TCP regardless of ``REPRO_TRANSPORT`` — they are the
transport's own suite. Everything here spawns real processes, so groups are
kept small and shared where state allows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.descriptors import ObjectDescriptor
from repro.errors import ObjectNotFound, ServerUnavailable
from repro.faults import FaultPlan, inject_faults
from repro.geometry import BBox, Domain
from repro.net.tcp import TcpTransport
from repro.staging import ProtectionConfig, StagingClient, StagingGroup
from repro.staging.resilience import rebuild_server

from tests.conftest import make_payload

pytestmark = pytest.mark.integration

DOMAIN = Domain((16, 16, 8))


@pytest.fixture
def tcp_group():
    group = StagingGroup.create(DOMAIN, num_servers=2, transport="tcp")
    yield group
    group.close()


def desc(name: str = "u", version: int = 0) -> ObjectDescriptor:
    return ObjectDescriptor(name, version, DOMAIN.bbox)


class TestRoundTrips:
    def test_put_get_byte_identical_to_inproc(self, tcp_group):
        """The same workload through both transports yields identical bytes."""
        inproc = StagingGroup.create(DOMAIN, num_servers=2, transport="inproc")
        d = desc()
        payload = make_payload(d)
        for g in (tcp_group, inproc):
            StagingClient(g, client_id="w").put(d, payload)
        a = StagingClient(tcp_group, client_id="r").get(d)
        b = StagingClient(inproc, client_id="r").get(d)
        assert a.tobytes() == b.tobytes()
        np.testing.assert_array_equal(a, payload)

    def test_subregion_get(self, tcp_group):
        d = desc()
        payload = make_payload(d)
        StagingClient(tcp_group, client_id="w").put(d, payload)
        sub = BBox((2, 3, 1), (10, 12, 6))
        got = StagingClient(tcp_group, client_id="r").get(
            ObjectDescriptor(d.name, d.version, sub)
        )
        np.testing.assert_array_equal(got, payload[2:10, 3:12, 1:6])

    def test_missing_object_raises_not_found_typed(self, tcp_group):
        with pytest.raises(ObjectNotFound):
            StagingClient(tcp_group, client_id="r").get(desc("nope", 9))

    def test_many_versions_round_trip(self, tcp_group):
        client = StagingClient(tcp_group, client_id="w")
        for v in range(4):
            client.put(desc("u", v), make_payload(desc("u", v)))
        for v in range(4):
            np.testing.assert_array_equal(
                client.get(desc("u", v)), make_payload(desc("u", v))
            )

    def test_snapshot_restore_round_trips_state(self, tcp_group):
        client = StagingClient(tcp_group, client_id="w")
        d = desc()
        client.put(d, make_payload(d))
        snaps = [s.snapshot() for s in tcp_group.servers]
        for s in tcp_group.servers:
            s.store.clear()
            s.rebuild_index()
        with pytest.raises(ObjectNotFound):
            client.get(d)
        for s, snap in zip(tcp_group.servers, snaps):
            s.restore(snap)
        np.testing.assert_array_equal(client.get(d), make_payload(d))


def _request_count() -> int:
    from repro.obs import get_registry

    counter = get_registry().get("net.tcp.requests")
    return 0 if counter is None else counter.value


class TestBatching:
    def test_server_vector_ops_are_single_round_trips(self, tcp_group):
        """put_many/get_many ride the pipelined batch path: one frame holds
        the whole vector, never one round trip per fragment."""
        server = tcp_group.servers[0]
        box = BBox((0, 0, 0), (4, 4, 4))
        descs = [ObjectDescriptor("u", v, box) for v in range(6)]
        shards = [(d, make_payload(d)) for d in descs]
        before = _request_count()
        server.put_many(shards)
        assert _request_count() - before == 1
        before = _request_count()
        got = server.get_many(descs)
        assert _request_count() - before == 1
        for g, (_d, p) in zip(got, shards):
            np.testing.assert_array_equal(g, p)

    def test_client_put_costs_one_request_per_server(self, tcp_group):
        """A sharded put sends each server its fragments in a single RPC,
        regardless of how many placement blocks land on it."""
        d = desc()
        before = _request_count()
        StagingClient(tcp_group, client_id="w").put(d, make_payload(d))
        assert _request_count() - before <= len(tcp_group.servers)

    def test_batch_errors_stay_per_op(self, tcp_group):
        """A failing op in a batch surfaces typed but doesn't poison its
        neighbours: batches are pipelines, not transactions."""
        server = tcp_group.servers[0]
        box = BBox((0, 0, 0), (4, 4, 4))
        d = ObjectDescriptor("w", 0, box)
        payload = make_payload(d)
        with pytest.raises(ObjectNotFound):
            server.pipeline(
                [
                    ("put", (d, payload)),
                    ("get", (ObjectDescriptor("ghost", 1, box),)),
                ]
            )
        # The put ahead of the failing get still landed.
        np.testing.assert_array_equal(server.get(d), payload)


class TestFailStop:
    def test_killed_server_process_maps_to_server_unavailable(self, tcp_group):
        transport = tcp_group.transport
        endpoint = transport.endpoints()[0]
        endpoint.process.kill()
        endpoint.process.join(timeout=10)
        with pytest.raises(ServerUnavailable):
            tcp_group.servers[0].summary()

    def test_rebuild_replaces_dead_process(self):
        """rebuild_server spawns a fresh process and repopulates it from
        survivors; afterwards the group serves the full object again."""
        group = StagingGroup.create(
            DOMAIN,
            num_servers=4,
            transport="tcp",
            protection=ProtectionConfig(mode="rs", parity=2),
        )
        try:
            d = desc()
            payload = make_payload(d)
            client = StagingClient(group, client_id="w")
            client.put(d, payload)
            victim = group.transport.endpoints()[0]
            victim.process.kill()
            victim.process.join(timeout=10)
            group.health.mark_down(0)
            rebuilt = rebuild_server(group, 0)
            assert rebuilt > 0
            assert group.servers[0].ping()
            assert group.health.state(0) == "up"
            group.drop_protection()
            np.testing.assert_array_equal(client.get(d), payload)
        finally:
            group.close()


class TestFaultInjection:
    def test_injected_crash_fires_inside_server_process(self, tcp_group):
        d = desc()
        payload = make_payload(d)
        StagingClient(tcp_group, client_id="w").put(d, payload)
        sid, shard_box = tcp_group.placement.shards(d.bbox)[0]
        shard_desc = ObjectDescriptor(d.name, d.version, shard_box)
        handle = inject_faults(tcp_group, [FaultPlan(server=sid, op=0, kind="crash")])
        with pytest.raises(ServerUnavailable):
            tcp_group.servers[sid].get(shard_desc)
        assert handle.pending_count == 0
        assert any(p.kind == "crash" and p.server == sid for p in handle.fired)
        tcp_group.servers[sid].heal()
        region = tuple(slice(lo, hi) for lo, hi in zip(shard_box.lo, shard_box.hi))
        np.testing.assert_array_equal(
            tcp_group.servers[sid].get(shard_desc), payload[region]
        )


class TestLifecycle:
    def test_close_terminates_server_processes(self):
        group = StagingGroup.create(DOMAIN, num_servers=2, transport="tcp")
        procs = [e.process for e in group.transport.endpoints()]
        assert all(p.is_alive() for p in procs)
        group.close()
        for p in procs:
            p.join(timeout=10)
        assert not any(p.is_alive() for p in procs)

    def test_close_is_idempotent(self):
        group = StagingGroup.create(DOMAIN, num_servers=1, transport="tcp")
        group.close()
        group.close()

    def test_transport_resolution(self, monkeypatch):
        from repro.net import InprocTransport, resolve_transport

        assert resolve_transport("inproc").name == "inproc"
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert isinstance(resolve_transport(None), InprocTransport)
        monkeypatch.setenv("REPRO_TRANSPORT", "tcp")
        assert resolve_transport(None).name == "tcp"
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")
        t = TcpTransport()
        assert resolve_transport(t) is t
        t.close()
