"""End-to-end tests against real server processes over the shm transport.

Mirrors ``test_tcp_e2e.py`` — the whole fault surface (kill, rebuild,
injected faults, typed errors) must behave identically when bulk payloads
ride shared-memory segments — plus shm-only concerns: segment-leak
hygiene, wire fallback under pool exhaustion, and lease stability of
zero-copy reply views.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.descriptors import ObjectDescriptor
from repro.errors import ObjectNotFound, ServerUnavailable
from repro.faults import FaultPlan, inject_faults
from repro.geometry import BBox, Domain
from repro.net.shm import (
    SegmentPool,
    ShmTransport,
    leaked_segment_names,
)
from repro.staging import ProtectionConfig, StagingClient, StagingGroup
from repro.staging.resilience import rebuild_server

from tests.conftest import make_payload

pytestmark = pytest.mark.integration

# 128 KiB of float64: with 2 servers × 4 placement blocks each, every shard
# is ~16 KiB — comfortably above MIN_ARRAY_BYTES, so bulk payloads genuinely
# ride segments (a smaller domain would shard below the inline threshold and
# quietly test the wire path instead).
DOMAIN = Domain((32, 32, 16))


@pytest.fixture
def shm_group():
    group = StagingGroup.create(DOMAIN, num_servers=2, transport="shm")
    yield group
    group.close()


def desc(name: str = "u", version: int = 0) -> ObjectDescriptor:
    return ObjectDescriptor(name, version, DOMAIN.bbox)


def _counter(name: str) -> int:
    from repro.obs import get_registry

    counter = get_registry().get(name)
    return 0 if counter is None else counter.value


class TestRoundTrips:
    def test_put_get_byte_identical_to_inproc(self, shm_group):
        """The same workload through both transports yields identical bytes."""
        inproc = StagingGroup.create(DOMAIN, num_servers=2, transport="inproc")
        d = desc()
        payload = make_payload(d)
        for g in (shm_group, inproc):
            StagingClient(g, client_id="w").put(d, payload)
        a = StagingClient(shm_group, client_id="r").get(d)
        b = StagingClient(inproc, client_id="r").get(d)
        assert a.tobytes() == b.tobytes()
        np.testing.assert_array_equal(a, payload)

    def test_payloads_actually_ride_segments(self, shm_group):
        """Not just correct — the bulk bytes must go out-of-band: puts bump
        the oob counter, gets bump the grant counter, nothing falls back."""
        d = desc()
        payload = make_payload(d)
        oob, grants, fallbacks = (
            _counter("net.shm.oob_bytes"),
            _counter("net.shm.grant_bytes"),
            _counter("net.shm.wire_fallbacks"),
        )
        client = StagingClient(shm_group, client_id="w")
        client.put(d, payload)
        got = client.get(d)
        np.testing.assert_array_equal(got, payload)
        assert _counter("net.shm.oob_bytes") - oob >= payload.nbytes
        assert _counter("net.shm.grant_bytes") - grants >= payload.nbytes
        assert _counter("net.shm.wire_fallbacks") == fallbacks

    def test_subregion_get(self, shm_group):
        d = desc()
        payload = make_payload(d)
        StagingClient(shm_group, client_id="w").put(d, payload)
        sub = BBox((2, 3, 1), (10, 12, 6))
        got = StagingClient(shm_group, client_id="r").get(
            ObjectDescriptor(d.name, d.version, sub)
        )
        np.testing.assert_array_equal(got, payload[2:10, 3:12, 1:6])

    def test_missing_object_raises_not_found_typed(self, shm_group):
        with pytest.raises(ObjectNotFound):
            StagingClient(shm_group, client_id="r").get(desc("nope", 9))

    def test_many_versions_round_trip(self, shm_group):
        client = StagingClient(shm_group, client_id="w")
        for v in range(4):
            client.put(desc("u", v), make_payload(desc("u", v)))
        for v in range(4):
            np.testing.assert_array_equal(
                client.get(desc("u", v)), make_payload(desc("u", v))
            )

    def test_snapshot_restore_round_trips_state(self, shm_group):
        """restore retains decoded arrays server-side, so it is deliberately
        NOT a segment op — this exercises the wire path staying correct."""
        client = StagingClient(shm_group, client_id="w")
        d = desc()
        client.put(d, make_payload(d))
        snaps = [s.snapshot() for s in shm_group.servers]
        for s in shm_group.servers:
            s.store.clear()
            s.rebuild_index()
        with pytest.raises(ObjectNotFound):
            client.get(d)
        for s, snap in zip(shm_group.servers, snaps):
            s.restore(snap)
        np.testing.assert_array_equal(client.get(d), make_payload(d))

    def test_large_payload_uses_grants(self):
        """A ≥1 MiB object per server — the slab-growth path (power-of-two
        rounding past the minimum slab) and large grants."""
        big_domain = Domain((64, 64, 64))  # 2 MiB of float64
        group = StagingGroup.create(big_domain, num_servers=2, transport="shm")
        try:
            d = ObjectDescriptor("big", 0, big_domain.bbox)
            payload = make_payload(d)
            client = StagingClient(group, client_id="w")
            oob = _counter("net.shm.oob_bytes")
            client.put(d, payload)
            np.testing.assert_array_equal(client.get(d), payload)
            assert _counter("net.shm.oob_bytes") - oob >= payload.nbytes
        finally:
            group.close()


class TestBatching:
    def test_server_vector_ops_are_single_round_trips(self, shm_group):
        server = shm_group.servers[0]
        box = BBox((0, 0, 0), (8, 8, 8))  # 4 KiB shards: segment-eligible
        descs = [ObjectDescriptor("u", v, box) for v in range(6)]
        shards = [(d, make_payload(d)) for d in descs]
        before = _counter("net.tcp.requests")
        server.put_many(shards)
        assert _counter("net.tcp.requests") - before == 1
        before = _counter("net.tcp.requests")
        got = server.get_many(descs)
        assert _counter("net.tcp.requests") - before == 1
        for g, (_d, p) in zip(got, shards):
            np.testing.assert_array_equal(g, p)

    def test_batch_errors_stay_per_op(self, shm_group):
        server = shm_group.servers[0]
        box = BBox((0, 0, 0), (4, 4, 4))
        d = ObjectDescriptor("w", 0, box)
        payload = make_payload(d)
        with pytest.raises(ObjectNotFound):
            server.pipeline(
                [
                    ("put", (d, payload)),
                    ("get", (ObjectDescriptor("ghost", 1, box),)),
                ]
            )
        np.testing.assert_array_equal(server.get(d), payload)


class TestWireFallback:
    def test_exhausted_pool_falls_back_to_wire_frames(self, shm_group):
        """With zero-capacity pools every acquire fails; the transport must
        degrade to plain TCP frames with identical results."""
        for endpoint in shm_group.transport.endpoints():
            endpoint.pool.close()
            endpoint.pool = SegmentPool(capacity_bytes=0)
        fallbacks = _counter("net.shm.wire_fallbacks")
        d = desc()
        payload = make_payload(d)
        client = StagingClient(shm_group, client_id="w")
        client.put(d, payload)
        np.testing.assert_array_equal(client.get(d), payload)
        assert _counter("net.shm.wire_fallbacks") > fallbacks
        assert shm_group.transport.segment_names() == []


class TestLeases:
    def test_reply_views_stable_across_later_traffic(self, shm_group):
        """A zero-copy reply view must keep its bytes while later requests
        recycle pool slabs — the lease holds the slab out of rotation."""
        server = shm_group.servers[0]
        sid, shard_box = shm_group.placement.shards(desc().bbox)[0]
        shard_desc = ObjectDescriptor("u", 0, shard_box)
        payload = make_payload(shard_desc)
        shm_group.servers[sid].put(shard_desc, payload)
        view = shm_group.servers[sid].get(shard_desc)
        frozen = view.tobytes()
        for v in range(1, 5):  # churn the pool
            d2 = ObjectDescriptor("churn", v, shard_box)
            shm_group.servers[sid].put(d2, make_payload(d2))
            shm_group.servers[sid].get(d2)
        assert view.tobytes() == frozen
        np.testing.assert_array_equal(view, payload)

    def test_leased_view_can_be_re_put(self, shm_group):
        """Re-putting a reply view exercises the codec's ndarray-subclass
        path: the lease must never be pickled onto the wire."""
        sid, shard_box = shm_group.placement.shards(desc().bbox)[0]
        d = ObjectDescriptor("u", 0, shard_box)
        payload = make_payload(d)
        shm_group.servers[sid].put(d, payload)
        view = shm_group.servers[sid].get(d)
        d2 = ObjectDescriptor("copy", 1, shard_box)
        shm_group.servers[sid].put(d2, view)
        np.testing.assert_array_equal(shm_group.servers[sid].get(d2), payload)


class TestFailStop:
    def test_killed_server_process_maps_to_server_unavailable(self, shm_group):
        transport = shm_group.transport
        endpoint = transport.endpoints()[0]
        endpoint.process.kill()
        endpoint.process.join(timeout=10)
        with pytest.raises(ServerUnavailable):
            shm_group.servers[0].summary()

    def test_killed_server_leaves_no_segments_behind(self):
        """Slabs in flight toward a killed server are retired; close()
        unlinks everything the transport ever created."""
        group = StagingGroup.create(DOMAIN, num_servers=2, transport="shm")
        d = desc()
        payload = make_payload(d)
        StagingClient(group, client_id="w").put(d, payload)
        names_live = group.transport.segment_names()
        assert names_live  # the put left pooled slabs behind
        endpoint = group.transport.endpoints()[0]
        endpoint.process.kill()
        endpoint.process.join(timeout=10)
        with pytest.raises(ServerUnavailable):
            group.servers[0].put(desc("u", 1), payload)
        group.close()
        assert group.transport.segment_names() == []
        assert not (set(names_live) & set(leaked_segment_names()))

    def test_rebuild_replaces_dead_process(self):
        group = StagingGroup.create(
            DOMAIN,
            num_servers=4,
            transport="shm",
            protection=ProtectionConfig(mode="rs", parity=2),
        )
        try:
            d = desc()
            payload = make_payload(d)
            client = StagingClient(group, client_id="w")
            client.put(d, payload)
            victim = group.transport.endpoints()[0]
            victim.process.kill()
            victim.process.join(timeout=10)
            group.health.mark_down(0)
            rebuilt = rebuild_server(group, 0)
            assert rebuilt > 0
            assert group.servers[0].ping()
            assert group.health.state(0) == "up"
            group.drop_protection()
            np.testing.assert_array_equal(client.get(d), payload)
        finally:
            group.close()


class TestFaultInjection:
    def test_injected_crash_fires_inside_server_process(self, shm_group):
        d = desc()
        payload = make_payload(d)
        StagingClient(shm_group, client_id="w").put(d, payload)
        sid, shard_box = shm_group.placement.shards(d.bbox)[0]
        shard_desc = ObjectDescriptor(d.name, d.version, shard_box)
        handle = inject_faults(shm_group, [FaultPlan(server=sid, op=0, kind="crash")])
        with pytest.raises(ServerUnavailable):
            shm_group.servers[sid].get(shard_desc)
        assert handle.pending_count == 0
        assert any(p.kind == "crash" and p.server == sid for p in handle.fired)
        shm_group.servers[sid].heal()
        region = tuple(slice(lo, hi) for lo, hi in zip(shard_box.lo, shard_box.hi))
        np.testing.assert_array_equal(
            shm_group.servers[sid].get(shard_desc), payload[region]
        )


class TestLifecycle:
    def test_close_terminates_processes_and_unlinks_segments(self):
        group = StagingGroup.create(DOMAIN, num_servers=2, transport="shm")
        d = desc()
        StagingClient(group, client_id="w").put(d, make_payload(d))
        names = group.transport.segment_names()
        procs = [e.process for e in group.transport.endpoints()]
        assert all(p.is_alive() for p in procs)
        group.close()
        for p in procs:
            p.join(timeout=10)
        assert not any(p.is_alive() for p in procs)
        assert group.transport.segment_names() == []
        assert not (set(names) & set(leaked_segment_names()))

    def test_close_is_idempotent(self):
        group = StagingGroup.create(DOMAIN, num_servers=1, transport="shm")
        group.close()
        group.close()

    def test_transport_resolution(self, monkeypatch):
        from repro.net import resolve_transport

        assert resolve_transport("shm").name == "shm"
        monkeypatch.setenv("REPRO_TRANSPORT", "shm")
        t = resolve_transport(None)
        assert isinstance(t, ShmTransport)
        existing = ShmTransport()
        assert resolve_transport(existing) is existing
        existing.close()
