"""Property tests: the wire codec round-trips every RPC value shape.

The staging RPC surface moves python scalars/containers, numpy arrays,
and the staging identity types (BBox / ObjectDescriptor / StoredObject).
Hypothesis drives arbitrary compositions of those; every value must
satisfy ``decode(encode(v)) == v`` with types preserved exactly —
a tuple that comes back as a list would silently break dict keys and
the ``("req", op, args)`` envelope.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.descriptors import ObjectDescriptor
from repro.geometry import BBox
from repro.net import ProtocolError, decode, encode
from repro.staging.store import StoredObject

# ---------------------------------------------------------------------------
# strategies

I64_MIN, I64_MAX = -(2**63), 2**63 - 1

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(I64_MIN, I64_MAX),
    st.floats(allow_nan=False),  # NaN != NaN breaks equality, tested separately
    st.text(max_size=40),
    st.binary(max_size=40),
)

# Zero-byte payloads are a real case: itemsize-0 void dtypes ("V0") store
# geometry-only fragments (see test_store_index_invariant).
ARRAY_DTYPES = ["float64", "float32", "int64", "int32", "uint8", "complex128", "V0"]


@st.composite
def ndarrays(draw):
    dtype = np.dtype(draw(st.sampled_from(ARRAY_DTYPES)))
    shape = tuple(draw(st.lists(st.integers(0, 4), min_size=0, max_size=3)))
    if dtype.itemsize == 0:
        return np.zeros(shape, dtype=dtype)
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    if dtype.kind == "c":
        value = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    elif dtype.kind == "f":
        value = rng.standard_normal(shape)  # finite values: NaN != NaN
    else:
        value = rng.integers(0, 100, size=shape)
    # asarray + reshape: keep 0-d shapes as true arrays, not numpy scalars.
    return np.asarray(value).astype(dtype).reshape(shape)


@st.composite
def bboxes(draw):
    ndim = draw(st.integers(1, 4))
    lo = [draw(st.integers(0, 16)) for _ in range(ndim)]
    hi = [l + draw(st.integers(1, 16)) for l in lo]
    return BBox(tuple(lo), tuple(hi))


@st.composite
def descriptors(draw):
    return ObjectDescriptor(
        draw(st.text(min_size=1, max_size=12)),
        draw(st.integers(0, 1000)),
        draw(bboxes()),
        dtype=draw(st.sampled_from(["float64", "float32", "int32", "V0"])),
    )


@st.composite
def stored_objects(draw):
    desc = draw(descriptors())
    if np.dtype(desc.dtype).itemsize == 0:
        data = np.zeros(desc.bbox.shape, dtype=desc.dtype)
    else:
        rng = np.random.default_rng(draw(st.integers(0, 2**31)))
        data = rng.standard_normal(desc.bbox.shape).astype(desc.dtype)
    return StoredObject(desc, data)


leaves = st.one_of(scalars, ndarrays(), bboxes(), descriptors(), stored_objects())

values = st.recursive(
    leaves,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(st.text(max_size=8), st.integers(-100, 100)), inner, max_size=4
        ),
        st.sets(st.integers(-100, 100), max_size=4),
    ),
    max_leaves=8,
)


def assert_same(a, b) -> None:
    """Structural equality with exact type preservation."""
    assert type(a) is type(b), (type(a), type(b))
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape
        np.testing.assert_array_equal(a, b)
    elif isinstance(a, StoredObject):
        assert a.desc == b.desc
        assert_same(a.data, b.data)
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_same(x, y)
    elif isinstance(a, dict):
        assert sorted(map(repr, a)) == sorted(map(repr, b))
        for k in a:
            assert_same(a[k], b[k])
    else:
        assert a == b


# ---------------------------------------------------------------------------
# properties


@settings(max_examples=300, deadline=None)
@given(values)
def test_roundtrip_preserves_value_and_type(v):
    assert_same(v, decode(encode(v)))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.text(min_size=1, max_size=10), values), max_size=4))
def test_request_envelope_roundtrip(calls):
    """Every RPC message type survives the wire: req, ok, err, batch(+ok)."""
    reqs = [("req", op, (arg,)) for op, arg in calls]
    for msg in (
        *reqs,
        ("ok", [arg for _op, arg in calls]),
        ("err", "transient", 3, "injected"),
        ("batch", list(reqs)),
        ("batch_ok", [("ok", arg) for _op, arg in calls]),
    ):
        assert_same(msg, decode(encode(msg)))


@settings(max_examples=50, deadline=None)
@given(ndarrays())
def test_decoded_arrays_are_writable_copies(arr):
    out = decode(encode(arr))
    if out.dtype.itemsize:
        assert out.flags.writeable  # never a view into the receive buffer
    assert out.flags.c_contiguous or out.size <= 1 or 0 in out.shape


class TestEdgeCases:
    def test_zero_byte_fragment(self):
        """Itemsize-0 dtypes produce 0-byte arrays that must still carry shape."""
        arr = np.zeros((4, 3), dtype="V0")
        out = decode(encode(arr))
        assert out.shape == (4, 3) and out.dtype == np.dtype("V0")
        assert out.nbytes == 0

    def test_empty_containers(self):
        for v in ([], (), {}, set(), "", b""):
            assert_same(v, decode(encode(v)))

    def test_i64_boundaries_and_bignum_fallback(self):
        for n in (I64_MIN, I64_MAX, 0, -1):
            assert decode(encode(n)) == n
        for n in (I64_MAX + 1, I64_MIN - 1, 10**30):  # pickle fallback path
            assert decode(encode(n)) == n

    def test_float_specials(self):
        for v in (0.0, -0.0, float("inf"), float("-inf"), 5e-324, 1.7e308):
            out = decode(encode(v))
            assert out == v and np.signbit(out) == np.signbit(v)
        assert np.isnan(decode(encode(float("nan"))))

    def test_max_size_payload_roundtrips_untransformed(self):
        """A large array's bytes cross the wire verbatim (no transform)."""
        arr = np.arange(4 << 20, dtype=np.uint8)  # 4 MiB
        blob = encode(arr)
        assert arr.tobytes() in blob  # raw C-order bytes embedded as-is
        np.testing.assert_array_equal(decode(blob), arr)

    def test_noncontiguous_array(self):
        base = np.arange(64, dtype=np.float64).reshape(8, 8)
        view = base[::2, ::2]
        assert not view.flags.c_contiguous
        np.testing.assert_array_equal(decode(encode(view)), view)

    def test_numpy_scalars_decode_as_python(self):
        assert decode(encode(np.int64(7))) == 7
        assert decode(encode(np.float64(2.5))) == 2.5

    def test_object_dtype_falls_back_to_pickle(self):
        arr = np.array([{"a": 1}, None], dtype=object)
        out = decode(encode(arr))
        assert out.dtype == object and out[0] == {"a": 1} and out[1] is None

    def test_unknown_types_ride_pickle(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(server=2, op=5, kind="flaky", calls=3)
        assert decode(encode(plan)) == plan

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            decode(encode(1) + b"\x00")

    def test_truncated_payload_rejected(self):
        blob = encode(np.arange(100, dtype=np.float64))
        with pytest.raises(ProtocolError):
            decode(blob[:-5])

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            decode(b"\xff")


# ---------------------------------------------------------------------------
# scatter-gather: encode_iov / zero-copy decode / out-of-band SegRefs


@settings(max_examples=150, deadline=None)
@given(values)
def test_encode_iov_join_equals_encode(v):
    """The iovec form is byte-identical to the contiguous form."""
    from repro.net.codec import encode_iov

    assert b"".join(bytes(p) for p in encode_iov(v)) == encode(v)


class TestScatterGather:
    def test_large_contiguous_payload_is_zero_copy(self):
        """≥ IOV_MIN_BYTES contiguous arrays ride the iovec as memoryviews
        of the caller's buffer — the regression test for the no-copy fast
        path."""
        from repro.net.codec import encode_iov

        arr = np.arange(2048, dtype=np.float64)  # 16 KiB
        views = [p for p in encode_iov(arr) if isinstance(p, memoryview)]
        assert len(views) == 1
        assert np.shares_memory(np.frombuffer(views[0], dtype=np.uint8), arr)

    def test_small_payload_inlines_into_control_stream(self):
        from repro.net.codec import encode_iov

        parts = encode_iov(np.arange(8, dtype=np.float64))  # 64 B
        assert not any(isinstance(p, memoryview) for p in parts)

    def test_zero_copy_decode_returns_views_over_frame(self):
        arr = np.arange(2048, dtype=np.float64)
        buf = bytearray(encode(arr))  # writable, like recv_frame's buffer
        frame = np.frombuffer(buf, dtype=np.uint8)
        view = decode(buf, copy_arrays=False)
        assert np.shares_memory(view, frame)
        np.testing.assert_array_equal(view, arr)
        owned = decode(buf)  # default: owning, writable copy
        assert not np.shares_memory(owned, frame)
        owned[0] = -1.0

    def test_array_sink_claims_arrays_and_source_restores(self):
        from repro.net.codec import SegRef

        arr = np.arange(1024, dtype=np.float64)
        placed: dict[tuple, np.ndarray] = {}

        def sink(a):
            ref = SegRef("seg-x", 3, len(placed) * 8192, a.nbytes, a.dtype.str, a.shape)
            placed[(ref.segment, ref.offset)] = a.copy()
            return ref

        payload = encode({"x": arr, "n": 5}, array_sink=sink)
        assert arr.tobytes() not in payload  # bytes went out-of-band
        out = decode(payload, array_source=lambda ref: placed[(ref.segment, ref.offset)])
        np.testing.assert_array_equal(out["x"], arr)
        assert out["n"] == 5

    def test_segref_without_resolver_is_protocol_error(self):
        arr = np.arange(64, dtype=np.float64)

        def sink(a):
            from repro.net.codec import SegRef

            return SegRef("seg-x", 0, 0, a.nbytes, a.dtype.str, a.shape)

        payload = encode(arr, array_sink=sink)
        with pytest.raises(ProtocolError):
            decode(payload)

    def test_ndarray_subclass_encodes_as_base_data(self):
        """Subclassed arrays (the shm transport's leased reply views) must
        encode as plain array data — pickling them would drag transport
        state (an unpicklable lease here) onto the wire."""
        import threading

        class Tagged(np.ndarray):
            pass

        arr = np.arange(640, dtype=np.float64).view(Tagged)
        arr._lease = threading.Lock()  # pickle would blow up on this
        out = decode(encode(arr))
        assert type(out) is np.ndarray
        np.testing.assert_array_equal(out, np.arange(640, dtype=np.float64))
