"""Multiplexed RPC core: demux correctness, deadlines, admission control.

The marquee property: N concurrent caller threads sharing ONE socket (the
mux default) each get back exactly the bytes they stored, under random
payload shapes and thread interleavings, with completions arriving out of
order (a slow-faulted request must not delay its neighbours). Plus the
regression matrix for the new typed errors: DeadlineExceeded for requests
that expire before the server runs them, ServerBusy when the bounded
in-flight queue sheds, and drain-before-close on ``admin:shutdown``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.descriptors import ObjectDescriptor
from repro.errors import DeadlineExceeded, ServerBusy, TransientServerError
from repro.faults import FaultPlan, inject_faults
from repro.geometry import BBox, Domain
from repro.net.frames import (
    Frame,
    MuxFrameDecoder,
    frame_header_v2,
    send_frame,
)
from repro.net.mux import current_deadline, deadline_scope
from repro.staging import StagingClient, StagingGroup
from repro.staging.resilience import RetryPolicy

from tests.conftest import make_payload

pytestmark = pytest.mark.integration

#: This suite always exercises a *wire* transport (mux lives in the wire
#: stack); under the CI transport matrix it follows REPRO_TRANSPORT so the
#: concurrency dimension runs over shm's doorbell connections too.
WIRE = (
    "shm"
    if os.environ.get("REPRO_TRANSPORT", "").strip().lower() == "shm"
    else "tcp"
)

DOMAIN = Domain((16, 16, 8))
FULL = BBox((0, 0, 0), (16, 16, 8))


def _counter_value(name: str) -> int:
    from repro.obs import get_registry

    counter = get_registry().get(name)
    return 0 if counter is None else counter.value


@pytest.fixture(scope="module")
def mux_group():
    """One long-lived 2-server TCP group shared by the demux properties —
    spawning processes per hypothesis example would dominate the runtime."""
    group = StagingGroup.create(DOMAIN, num_servers=2, transport=WIRE)
    yield group
    group.close()


def _endpoint(group, sid=0):
    return group.servers[sid]._endpoint


# ---------------------------------------------------------------------------
# frame-level: the v2 decoder demuxes mixed v1/v2 streams at any split


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.binary(max_size=48),
            st.one_of(st.none(), st.integers(1, 2**64 - 1)),
            st.floats(0, 1e9),
        ),
        max_size=6,
    ),
    st.integers(1, 9),
)
def test_mux_decoder_any_split_any_version_mix(frames, chunk):
    stream = b""
    for payload, rid, deadline in frames:
        if rid is None:
            stream += len(payload).to_bytes(4, "big") + payload
        else:
            stream += frame_header_v2(len(payload), rid, deadline) + payload
    dec = MuxFrameDecoder()
    for i in range(0, len(stream), chunk):
        dec.feed(stream[i : i + chunk])
    got = dec.frames()
    assert len(got) == len(frames)
    for out, (payload, rid, deadline) in zip(got, frames):
        assert isinstance(out, Frame)
        assert bytes(out.payload) == payload
        assert out.request_id == rid
        if rid is not None:
            assert out.deadline == pytest.approx(deadline)
        else:
            assert out.deadline == 0.0
    dec.close()


# ---------------------------------------------------------------------------
# the marquee property: N callers, one socket, byte-identical demux


_example_counter = itertools.count()


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seeds=st.lists(st.integers(0, 2**16), min_size=4, max_size=8))
def test_concurrent_callers_get_byte_identical_replies(mux_group, seeds):
    """Each thread writes its own object and reads it back (twice, with a
    barrier in between to maximise interleaving); every reply must demux to
    exactly that thread's bytes. Payload sizes differ per thread so
    completions genuinely reorder on the shared connection."""
    n = len(seeds)
    # Fresh names every example: the module-scoped group keeps state, and a
    # re-put of an old name with different geometry is a VersionConflict.
    run = next(_example_counter)
    version = 1
    barrier = threading.Barrier(n)
    failures: list = []

    def worker(idx: int, seed: int) -> None:
        try:
            name = f"mux-{run}-{idx}"
            # Distinct extents per thread → distinct payload sizes.
            hi = 4 + (seed % 12)
            desc = ObjectDescriptor(name, version, BBox((0, 0, 0), (hi, hi, 8)))
            payload = make_payload(desc, seed=seed)
            client = StagingClient(mux_group, client_id=f"t{idx}")
            barrier.wait(timeout=30)
            client.put(desc, payload)
            got = client.get(desc)
            np.testing.assert_array_equal(got, payload)
            got2 = client.get(desc)
            np.testing.assert_array_equal(got2, payload)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append((idx, exc))

    threads = [
        threading.Thread(target=worker, args=(i, s)) for i, s in enumerate(seeds)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not failures, failures
    # All of that rode a couple of shared sockets, not a per-thread pool.
    endpoint = _endpoint(mux_group)
    assert endpoint._mux
    assert len(endpoint._mux_conns) <= endpoint._mux_target


# ---------------------------------------------------------------------------
# out-of-order completion: slow fault delays one request, not the connection


def test_slow_fault_delays_only_its_own_request():
    group = StagingGroup.create(DOMAIN, num_servers=1, transport=WIRE)
    try:
        client = StagingClient(group, client_id="w")
        desc = ObjectDescriptor("shared", 1, DOMAIN.bbox)
        client.put(desc, make_payload(desc))
        # Next data op on server 0 sleeps 0.6 s inside the worker pool.
        inject_faults(group, [FaultPlan(server=0, op=0, kind="slow", latency=0.6)])

        slow_done = threading.Event()

        def slow_reader():
            StagingClient(group, client_id="slow").get(desc)
            slow_done.set()

        t = threading.Thread(target=slow_reader)
        t.start()
        time.sleep(0.1)  # let the slow get reach the server first
        t0 = time.perf_counter()
        got = StagingClient(group, client_id="fast").get(desc)
        fast_elapsed = time.perf_counter() - t0
        np.testing.assert_array_equal(got, make_payload(desc))
        # The fast get overtook the slow one on the same shared connection.
        assert not slow_done.is_set()
        assert fast_elapsed < 0.45, f"fast request waited {fast_elapsed:.3f}s"
        t.join(timeout=30)
        assert slow_done.is_set()
    finally:
        group.close()


# ---------------------------------------------------------------------------
# deadline propagation


def test_deadline_scope_nesting_tightens_only():
    assert current_deadline() == 0.0
    with deadline_scope(100.0):
        assert current_deadline() == 100.0
        with deadline_scope(50.0):
            assert current_deadline() == 50.0
            with deadline_scope(200.0):  # may not loosen the outer bound
                assert current_deadline() == 50.0
        assert current_deadline() == 100.0
    assert current_deadline() == 0.0


def test_expired_deadline_dropped_server_side_typed():
    group = StagingGroup.create(DOMAIN, num_servers=1, transport=WIRE)
    try:
        endpoint = _endpoint(group)
        with deadline_scope(time.time() - 1.0):
            with pytest.raises(DeadlineExceeded) as err:
                endpoint.request("blob_keys", ("x", 0))
        assert isinstance(err.value, TransientServerError)  # retryable path
        metrics = endpoint.request("admin:metrics", ())
        assert metrics["net.mux.deadline_drops"]["value"] >= 1
        # The connection survived the drop and admin ops ignore deadlines.
        with deadline_scope(time.time() - 1.0):
            assert group.servers[0].ping()
    finally:
        group.close()


def test_live_deadline_requests_execute_normally():
    group = StagingGroup.create(DOMAIN, num_servers=1, transport=WIRE)
    try:
        desc = ObjectDescriptor("d", 1, DOMAIN.bbox)
        payload = make_payload(desc)
        client = StagingClient(group, client_id="w")
        # _server_op stamps its retry budget into every header; nothing
        # should expire on a healthy fast path.
        client.put(desc, payload)
        np.testing.assert_array_equal(client.get(desc), payload)
        metrics = _endpoint(group).request("admin:metrics", ())
        assert metrics["net.mux.deadline_drops"]["value"] == 0
    finally:
        group.close()


# ---------------------------------------------------------------------------
# admission control


def test_queue_full_sheds_with_server_busy(monkeypatch):
    monkeypatch.setenv("REPRO_SERVER_QUEUE", "1")
    monkeypatch.setenv("REPRO_SERVER_WORKERS", "1")
    group = StagingGroup.create(DOMAIN, num_servers=1, transport=WIRE)
    try:
        client = StagingClient(group, client_id="w")
        desc = ObjectDescriptor("q", 1, DOMAIN.bbox)
        client.put(desc, make_payload(desc))
        inject_faults(group, [FaultPlan(server=0, op=0, kind="slow", latency=0.8)])
        endpoint = _endpoint(group)

        t = threading.Thread(
            target=lambda: StagingClient(group, client_id="slow").get(desc)
        )
        t.start()
        time.sleep(0.2)  # the slow get now occupies the only admission slot
        with pytest.raises(ServerBusy) as err:
            endpoint.request("blob_keys", ("q", 1))
        assert isinstance(err.value, TransientServerError)
        t.join(timeout=30)
        metrics = endpoint.request("admin:metrics", ())
        assert metrics["net.mux.shed"]["value"] >= 1
        assert metrics["net.mux.queue_depth"]["value"] == 1
    finally:
        group.close()


def test_shed_requests_are_retried_transparently_by_client(monkeypatch):
    monkeypatch.setenv("REPRO_SERVER_QUEUE", "1")
    monkeypatch.setenv("REPRO_SERVER_WORKERS", "1")
    # Enough retry budget to outlast the 0.4 s busy window (the default
    # policy's total backoff is tens of milliseconds — tuned for transient
    # blips, not a saturated queue).
    retry = RetryPolicy(max_attempts=30, base_backoff=0.05, max_backoff=0.1)
    group = StagingGroup.create(DOMAIN, num_servers=1, transport=WIRE, retry=retry)
    try:
        client = StagingClient(group, client_id="w")
        desc = ObjectDescriptor("r", 1, DOMAIN.bbox)
        client.put(desc, make_payload(desc))
        inject_faults(group, [FaultPlan(server=0, op=0, kind="slow", latency=0.4)])

        t = threading.Thread(
            target=lambda: StagingClient(group, client_id="slow").get(desc)
        )
        t.start()
        time.sleep(0.1)
        # ServerBusy is TransientServerError: _server_op backs off and
        # retries until the worker frees up — the caller never sees the shed.
        got = StagingClient(group, client_id="fast").get(desc)
        np.testing.assert_array_equal(got, make_payload(desc))
        t.join(timeout=30)
        metrics = _endpoint(group).request("admin:metrics", ())
        assert metrics["net.mux.shed"]["value"] >= 1
    finally:
        group.close()


# ---------------------------------------------------------------------------
# clean shutdown drains in-flight work


def test_shutdown_drains_inflight_requests():
    group = StagingGroup.create(DOMAIN, num_servers=1, transport=WIRE)
    client = StagingClient(group, client_id="w")
    desc = ObjectDescriptor("drain", 1, DOMAIN.bbox)
    payload = make_payload(desc)
    client.put(desc, payload)
    inject_faults(group, [FaultPlan(server=0, op=0, kind="slow", latency=0.5)])

    result: dict = {}

    def slow_reader():
        try:
            result["value"] = StagingClient(group, client_id="slow").get(desc)
        except Exception as exc:  # noqa: BLE001 - asserted below
            result["error"] = exc

    t = threading.Thread(target=slow_reader)
    t.start()
    time.sleep(0.15)  # the get is admitted and sleeping in a worker
    group.close()  # admin:shutdown → drain → exit
    t.join(timeout=30)
    assert "error" not in result, f"in-flight get failed: {result.get('error')!r}"
    np.testing.assert_array_equal(result["value"], payload)


# ---------------------------------------------------------------------------
# v1 fallback and pool cap


def test_v1_pooled_fallback_and_idle_cap(monkeypatch):
    monkeypatch.setenv("REPRO_MUX", "0")
    group = StagingGroup.create(DOMAIN, num_servers=1, transport=WIRE)
    try:
        endpoint = _endpoint(group)
        assert not endpoint._mux
        desc = ObjectDescriptor("v1", 1, DOMAIN.bbox)
        payload = make_payload(desc)
        client = StagingClient(group, client_id="w")
        client.put(desc, payload)
        np.testing.assert_array_equal(client.get(desc), payload)

        from repro.net.tcp import POOL_MAX_IDLE

        # Return far more sockets than the cap retains.
        borrowed = [endpoint._borrow() for _ in range(POOL_MAX_IDLE + 4)]
        for sock in borrowed:
            endpoint._give_back(sock)
        assert len(endpoint._idle) == POOL_MAX_IDLE
    finally:
        group.close()


def test_v1_pool_cap_serializes_on_one_socket(monkeypatch):
    """REPRO_TCP_POOL_CAP=1 bounds the lockstep path to one data socket:
    concurrent callers serialize on it and still all succeed."""
    monkeypatch.setenv("REPRO_MUX", "0")
    monkeypatch.setenv("REPRO_TCP_POOL_CAP", "1")
    group = StagingGroup.create(DOMAIN, num_servers=1, transport=WIRE)
    try:
        desc = ObjectDescriptor("capped", 1, DOMAIN.bbox)
        payload = make_payload(desc)
        StagingClient(group, client_id="seed").put(desc, payload)
        before = _counter_value("net.tcp.connects")

        errors: list = []

        def worker(idx: int) -> None:
            try:
                client = StagingClient(group, client_id=f"cap-{idx}")
                for _ in range(5):
                    np.testing.assert_array_equal(client.get(desc), payload)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # The seed put already dialed the one allowed socket; the four
        # concurrent workers reuse it rather than dialing their own.
        assert _counter_value("net.tcp.connects") - before == 0
    finally:
        group.close()


def test_v1_client_against_v2_server_lockstep(monkeypatch):
    """A pure-v1 client (no mux, no ids) still round-trips against the
    event-loop server — replies come back in arrival order."""
    monkeypatch.setenv("REPRO_MUX", "0")
    group = StagingGroup.create(DOMAIN, num_servers=1, transport=WIRE)
    try:
        endpoint = _endpoint(group)
        sock = endpoint._borrow()
        try:
            from repro.net.frames import recv_frame
            from repro.net.protocol import decode_message, encode_request

            for _ in range(3):
                send_frame(sock, encode_request("admin:ping", ()))
            for _ in range(3):
                msg = decode_message(recv_frame(sock))
                assert msg == ("ok", "pong")
        finally:
            sock.close()
    finally:
        group.close()
