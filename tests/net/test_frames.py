"""Framing layer: length prefixes, torn frames, short reads, oversize caps."""

from __future__ import annotations

import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    ShortRead,
    WireClosed,
    recv_frame,
    send_frame,
)
from repro.net.frames import MAX_FRAME_BYTES


def frame_bytes(payload: bytes) -> bytes:
    return struct.pack("!I", len(payload)) + payload


# ---------------------------------------------------------------------------
# FrameDecoder: incremental push-style decoding


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.binary(max_size=64), max_size=6),
    st.integers(1, 7),
)
def test_decoder_tolerates_any_byte_split(payloads, chunk):
    """Feeding the stream in arbitrary chunk sizes recovers exact frames."""
    stream = b"".join(frame_bytes(p) for p in payloads)
    dec = FrameDecoder()
    for i in range(0, len(stream), chunk):
        dec.feed(stream[i : i + chunk])
    assert dec.frames() == payloads
    dec.close()  # boundary: clean EOF
    assert dec.pending_bytes == 0


def test_decoder_one_byte_at_a_time():
    payloads = [b"", b"x", b"hello world"]
    stream = b"".join(frame_bytes(p) for p in payloads)
    dec = FrameDecoder()
    for i in range(len(stream)):
        dec.feed(stream[i : i + 1])
    assert dec.frames() == payloads


def test_torn_frame_short_read_on_close():
    """EOF mid-frame must raise ShortRead — never yield a partial frame."""
    dec = FrameDecoder()
    dec.feed(frame_bytes(b"complete") + frame_bytes(b"torn!!")[:-2])
    assert dec.frames() == [b"complete"]
    assert dec.pending_bytes > 0
    with pytest.raises(ShortRead):
        dec.close()


def test_torn_header_short_read_on_close():
    dec = FrameDecoder()
    dec.feed(b"\x00\x00")  # half a length prefix
    assert dec.frames() == []
    with pytest.raises(ShortRead):
        dec.close()


def test_feed_after_close_rejected():
    dec = FrameDecoder()
    dec.close()
    with pytest.raises(ProtocolError):
        dec.feed(b"\x00")


def test_oversize_declared_length_rejected_before_payload():
    dec = FrameDecoder()
    with pytest.raises(FrameTooLarge):
        dec.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))


def test_decoder_iterates_in_arrival_order():
    dec = FrameDecoder()
    dec.feed(frame_bytes(b"a") + frame_bytes(b"b"))
    assert list(dec) == [b"a", b"b"]


# ---------------------------------------------------------------------------
# blocking socket pair: send_frame / recv_frame


def sock_pair():
    return socket.socketpair()


def test_socket_roundtrip_small_and_large():
    a, b = sock_pair()
    try:
        big = bytes(range(256)) * 1024  # 256 KiB: exercises the two-sendall path
        t = threading.Thread(target=lambda: (send_frame(a, b"ping"), send_frame(a, big)))
        t.start()
        assert recv_frame(b) == b"ping"
        assert recv_frame(b) == big
        t.join()
    finally:
        a.close()
        b.close()


def test_socket_zero_byte_frame():
    a, b = sock_pair()
    try:
        send_frame(a, b"")
        assert recv_frame(b) == b""
    finally:
        a.close()
        b.close()


def test_clean_eof_at_boundary_is_wire_closed():
    a, b = sock_pair()
    try:
        send_frame(a, b"last")
        a.close()
        assert recv_frame(b) == b"last"
        with pytest.raises(WireClosed):
            recv_frame(b)
    finally:
        b.close()


def test_eof_mid_frame_is_short_read():
    a, b = sock_pair()
    try:
        a.sendall(struct.pack("!I", 100) + b"only-part")
        a.close()
        with pytest.raises(ShortRead):
            recv_frame(b)
    finally:
        b.close()


def test_recv_rejects_oversize_header_without_allocating():
    a, b = sock_pair()
    try:
        a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameTooLarge):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_send_rejects_oversize_payload():
    a, b = sock_pair()
    try:

        class FakeBig(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(FrameTooLarge):
            send_frame(a, FakeBig())
    finally:
        a.close()
        b.close()


# ---------------------------------------------------------------------------
# send_frame_iov: scatter-gather sends


def test_send_frame_iov_equals_send_frame():
    from repro.net.frames import send_frame_iov

    parts = [b"head", bytearray(b"-mid-"), memoryview(b"tail")]
    joined = b"".join(bytes(p) for p in parts)
    a, b = sock_pair()
    try:
        sent = send_frame_iov(a, parts)
        assert sent == len(joined)
        assert recv_frame(b) == joined
    finally:
        a.close()
        b.close()


def test_send_frame_iov_skips_empty_parts():
    from repro.net.frames import send_frame_iov

    a, b = sock_pair()
    try:
        send_frame_iov(a, [b"", b"x", b"", memoryview(b""), b"y"])
        assert recv_frame(b) == b"xy"
    finally:
        a.close()
        b.close()


def test_send_frame_iov_empty_frame():
    from repro.net.frames import send_frame_iov

    a, b = sock_pair()
    try:
        assert send_frame_iov(a, []) == 0
        assert recv_frame(b) == b""
    finally:
        a.close()
        b.close()


def test_send_frame_iov_many_vectors_and_partial_sends():
    """More parts than one sendmsg can take (vector-count ceiling) plus a
    payload far beyond the socket buffer, so the partial-send loop runs."""
    from repro.net.frames import send_frame_iov

    parts = [bytes([i % 256]) * 997 for i in range(1300)]  # ~1.2 MiB, 1300 vecs
    joined = b"".join(parts)
    a, b = sock_pair()
    try:
        t = threading.Thread(target=send_frame_iov, args=(a, parts))
        t.start()
        got = recv_frame(b)
        t.join()
        assert bytes(got) == joined
    finally:
        a.close()
        b.close()


def test_recv_frame_buffer_is_writable():
    """Zero-copy decode views over a received frame must be mutable, so the
    frame buffer itself has to be writable (bytearray, not bytes)."""
    a, b = sock_pair()
    try:
        send_frame(a, b"abc")
        buf = recv_frame(b)
        assert isinstance(buf, bytearray)
        memoryview(buf)[0] = 0x7A
        assert buf == b"zbc"
    finally:
        a.close()
        b.close()
