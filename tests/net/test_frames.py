"""Framing layer: length prefixes, torn frames, short reads, oversize caps."""

from __future__ import annotations

import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    ShortRead,
    WireClosed,
    recv_frame,
    send_frame,
)
from repro.net.frames import MAX_FRAME_BYTES


def frame_bytes(payload: bytes) -> bytes:
    return struct.pack("!I", len(payload)) + payload


# ---------------------------------------------------------------------------
# FrameDecoder: incremental push-style decoding


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.binary(max_size=64), max_size=6),
    st.integers(1, 7),
)
def test_decoder_tolerates_any_byte_split(payloads, chunk):
    """Feeding the stream in arbitrary chunk sizes recovers exact frames."""
    stream = b"".join(frame_bytes(p) for p in payloads)
    dec = FrameDecoder()
    for i in range(0, len(stream), chunk):
        dec.feed(stream[i : i + chunk])
    assert dec.frames() == payloads
    dec.close()  # boundary: clean EOF
    assert dec.pending_bytes == 0


def test_decoder_one_byte_at_a_time():
    payloads = [b"", b"x", b"hello world"]
    stream = b"".join(frame_bytes(p) for p in payloads)
    dec = FrameDecoder()
    for i in range(len(stream)):
        dec.feed(stream[i : i + 1])
    assert dec.frames() == payloads


def test_torn_frame_short_read_on_close():
    """EOF mid-frame must raise ShortRead — never yield a partial frame."""
    dec = FrameDecoder()
    dec.feed(frame_bytes(b"complete") + frame_bytes(b"torn!!")[:-2])
    assert dec.frames() == [b"complete"]
    assert dec.pending_bytes > 0
    with pytest.raises(ShortRead):
        dec.close()


def test_torn_header_short_read_on_close():
    dec = FrameDecoder()
    dec.feed(b"\x00\x00")  # half a length prefix
    assert dec.frames() == []
    with pytest.raises(ShortRead):
        dec.close()


def test_feed_after_close_rejected():
    dec = FrameDecoder()
    dec.close()
    with pytest.raises(ProtocolError):
        dec.feed(b"\x00")


def test_oversize_declared_length_rejected_before_payload():
    dec = FrameDecoder()
    with pytest.raises(FrameTooLarge):
        dec.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))


def test_decoder_iterates_in_arrival_order():
    dec = FrameDecoder()
    dec.feed(frame_bytes(b"a") + frame_bytes(b"b"))
    assert list(dec) == [b"a", b"b"]


# ---------------------------------------------------------------------------
# blocking socket pair: send_frame / recv_frame


def sock_pair():
    return socket.socketpair()


def test_socket_roundtrip_small_and_large():
    a, b = sock_pair()
    try:
        big = bytes(range(256)) * 1024  # 256 KiB: exercises the two-sendall path
        t = threading.Thread(target=lambda: (send_frame(a, b"ping"), send_frame(a, big)))
        t.start()
        assert recv_frame(b) == b"ping"
        assert recv_frame(b) == big
        t.join()
    finally:
        a.close()
        b.close()


def test_socket_zero_byte_frame():
    a, b = sock_pair()
    try:
        send_frame(a, b"")
        assert recv_frame(b) == b""
    finally:
        a.close()
        b.close()


def test_clean_eof_at_boundary_is_wire_closed():
    a, b = sock_pair()
    try:
        send_frame(a, b"last")
        a.close()
        assert recv_frame(b) == b"last"
        with pytest.raises(WireClosed):
            recv_frame(b)
    finally:
        b.close()


def test_eof_mid_frame_is_short_read():
    a, b = sock_pair()
    try:
        a.sendall(struct.pack("!I", 100) + b"only-part")
        a.close()
        with pytest.raises(ShortRead):
            recv_frame(b)
    finally:
        b.close()


def test_recv_rejects_oversize_header_without_allocating():
    a, b = sock_pair()
    try:
        a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameTooLarge):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_send_rejects_oversize_payload():
    a, b = sock_pair()
    try:

        class FakeBig(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(FrameTooLarge):
            send_frame(a, FakeBig())
    finally:
        a.close()
        b.close()
