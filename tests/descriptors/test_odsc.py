"""Tests for object descriptors."""

import pytest

from repro.descriptors import ObjectDescriptor
from repro.errors import GeometryError
from repro.geometry import BBox


class TestConstruction:
    def test_basic(self):
        d = ObjectDescriptor("rho", 3, BBox((0, 0), (4, 4)))
        assert d.name == "rho"
        assert d.version == 3
        assert d.dtype == "float64"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ObjectDescriptor("", 0, BBox((0,), (1,)))

    def test_rejects_negative_version(self):
        with pytest.raises(ValueError):
            ObjectDescriptor("x", -1, BBox((0,), (1,)))

    def test_rejects_bad_dtype(self):
        with pytest.raises(TypeError):
            ObjectDescriptor("x", 0, BBox((0,), (1,)), dtype="notadtype")

    def test_nbytes(self):
        d = ObjectDescriptor("x", 0, BBox((0, 0), (4, 8)), dtype="float32")
        assert d.itemsize == 4
        assert d.nbytes == 4 * 8 * 4

    def test_key(self):
        d = ObjectDescriptor("x", 7, BBox((0,), (2,)))
        assert d.key == ("x", 7)

    def test_ordering_by_name_then_version(self):
        a = ObjectDescriptor("a", 5, BBox((0,), (1,)))
        b = ObjectDescriptor("b", 0, BBox((0,), (1,)))
        c = ObjectDescriptor("a", 6, BBox((0,), (9,)))
        assert sorted([c, b, a]) == [a, c, b]

    def test_equality_ignores_bbox(self):
        a = ObjectDescriptor("x", 1, BBox((0,), (4,)))
        b = ObjectDescriptor("x", 1, BBox((1,), (3,)))
        assert a == b  # same (name, version) identity


class TestDerivation:
    def test_with_version(self):
        d = ObjectDescriptor("x", 0, BBox((0,), (4,)))
        d2 = d.with_version(9)
        assert d2.version == 9
        assert d2.bbox == d.bbox

    def test_with_bbox(self):
        d = ObjectDescriptor("x", 0, BBox((0,), (4,)))
        d2 = d.with_bbox(BBox((1,), (2,)))
        assert d2.bbox == BBox((1,), (2,))
        assert d2.version == 0

    def test_with_bbox_rank_check(self):
        d = ObjectDescriptor("x", 0, BBox((0,), (4,)))
        with pytest.raises(GeometryError):
            d.with_bbox(BBox((0, 0), (1, 1)))

    def test_restrict_overlapping(self):
        d = ObjectDescriptor("x", 0, BBox((0, 0), (8, 8)))
        r = d.restrict(BBox((4, 4), (12, 12)))
        assert r is not None
        assert r.bbox == BBox((4, 4), (8, 8))

    def test_restrict_disjoint(self):
        d = ObjectDescriptor("x", 0, BBox((0,), (4,)))
        assert d.restrict(BBox((4,), (8,))) is None

    def test_str(self):
        d = ObjectDescriptor("rho", 2, BBox((0,), (4,)), dtype="int32")
        assert "rho@v2" in str(d)
        assert "int32" in str(d)
