"""Tests for the CoREC hybrid hot/cold protection policy."""

import numpy as np
import pytest

from repro.corec.policy import HybridPolicy
from repro.corec.reedsolomon import RSCode
from repro.corec.replication import ReplicationScheme
from repro.errors import ConfigError, ObjectNotFound


def arr(v, n=64):
    return np.arange(n, dtype=np.float64) + v


class TestLifecycle:
    def test_new_version_is_replicated(self):
        hp = HybridPolicy()
        obj = hp.protect("x", 0, arr(0))
        assert obj.mode == "replicated"
        assert len(obj.copies) == 2

    def test_aged_version_demoted(self):
        hp = HybridPolicy(hot_versions=1)
        hp.protect("x", 0, arr(0))
        hp.protect("x", 1, arr(1))
        modes = hp.modes()
        assert modes[("x", 0)] == "encoded"
        assert modes[("x", 1)] == "replicated"

    def test_hot_window_respected(self):
        hp = HybridPolicy(hot_versions=3)
        for v in range(4):
            hp.protect("x", v, arr(v))
        modes = hp.modes()
        assert modes[("x", 0)] == "encoded"
        assert modes[("x", 1)] == "replicated"
        assert modes[("x", 3)] == "replicated"

    def test_rejects_bad_hot_window(self):
        with pytest.raises(ConfigError):
            HybridPolicy(hot_versions=0)

    def test_demote_idempotent(self):
        hp = HybridPolicy()
        hp.protect("x", 0, arr(0))
        hp.demote("x", 0)
        obj = hp.demote("x", 0)
        assert obj.mode == "encoded"

    def test_demote_missing(self):
        with pytest.raises(ObjectNotFound):
            HybridPolicy().demote("x", 0)

    def test_names_independent(self):
        hp = HybridPolicy(hot_versions=1)
        hp.protect("x", 0, arr(0))
        hp.protect("y", 5, arr(5))
        # y's arrival must not demote x (different variable).
        assert hp.modes()[("x", 0)] == "replicated"


class TestRecovery:
    def test_recover_replicated(self):
        hp = HybridPolicy()
        hp.protect("x", 0, arr(0))
        out = np.frombuffer(hp.recover("x", 0), np.float64)
        assert np.array_equal(out, arr(0))

    def test_recover_replicated_with_loss(self):
        hp = HybridPolicy(replication=ReplicationScheme(n_replicas=3))
        hp.protect("x", 0, arr(0))
        out = np.frombuffer(hp.recover("x", 0, lost_copies=2), np.float64)
        assert np.array_equal(out, arr(0))

    def test_recover_all_copies_lost(self):
        hp = HybridPolicy()
        hp.protect("x", 0, arr(0))
        with pytest.raises(ObjectNotFound):
            hp.recover("x", 0, lost_copies=2)

    def test_recover_encoded_with_erasures(self):
        hp = HybridPolicy(code=RSCode(4, 2), hot_versions=1)
        hp.protect("x", 0, arr(0))
        hp.protect("x", 1, arr(1))  # demotes v0
        out = np.frombuffer(hp.recover("x", 0, lost_shards=2), np.float64)
        assert np.array_equal(out, arr(0))

    def test_recover_missing(self):
        with pytest.raises(ObjectNotFound):
            HybridPolicy().recover("nope", 0)


class TestAccounting:
    def test_overhead_between_rs_and_replication(self):
        hp = HybridPolicy(
            replication=ReplicationScheme(2), code=RSCode(4, 2), hot_versions=1
        )
        for v in range(6):
            hp.protect("x", v, arr(v))
        # Mostly cold (RS 0.5 overhead) with one hot (1.0 overhead).
        assert 0.5 < hp.overhead() < 1.0

    def test_evict(self):
        hp = HybridPolicy()
        hp.protect("x", 0, arr(0))
        freed = hp.evict("x", 0)
        assert freed == 2 * arr(0).nbytes
        assert hp.stored_bytes() == 0

    def test_evict_missing(self):
        assert HybridPolicy().evict("x", 9) == 0

    def test_logical_bytes(self):
        hp = HybridPolicy()
        hp.protect("x", 0, arr(0))
        hp.protect("x", 1, arr(1))
        assert hp.logical_bytes() == 2 * arr(0).nbytes
