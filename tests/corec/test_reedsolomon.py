"""Tests for systematic Reed-Solomon erasure coding."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corec.reedsolomon import RSCode, Shard
from repro.errors import DecodingError, EncodingError


def payload(n=1000, seed=0) -> bytes:
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8).tobytes()


class TestConstruction:
    def test_basic(self):
        rs = RSCode(4, 2)
        assert rs.k == 4
        assert rs.m == 2
        assert rs.storage_overhead == 0.5

    def test_rejects_bad_params(self):
        with pytest.raises(EncodingError):
            RSCode(0, 2)
        with pytest.raises(EncodingError):
            RSCode(4, -1)
        with pytest.raises(EncodingError):
            RSCode(200, 60)

    def test_zero_parity_allowed(self):
        rs = RSCode(4, 0)
        data = payload(64)
        assert rs.decode(rs.encode(data), 64) == data


class TestEncode:
    def test_shard_count_and_length(self):
        rs = RSCode(4, 2)
        shards = rs.encode(payload(1000))
        assert len(shards) == 6
        assert all(s.data.size == rs.shard_length(1000) for s in shards)

    def test_systematic_prefix(self):
        rs = RSCode(4, 2)
        data = payload(1024)
        shards = rs.encode(data)
        recon = b"".join(s.data.tobytes() for s in shards[:4])
        assert recon[:1024] == data

    def test_rejects_empty(self):
        with pytest.raises(EncodingError):
            RSCode(2, 1).encode(b"")

    def test_accepts_ndarray(self):
        rs = RSCode(3, 2)
        arr = np.arange(300, dtype=np.uint8)
        assert rs.decode(rs.encode(arr), 300) == arr.tobytes()


class TestDecode:
    def test_all_erasure_patterns(self):
        rs = RSCode(4, 2)
        data = payload(997)  # non-multiple of k exercises padding
        shards = rs.encode(data)
        for lost in itertools.combinations(range(6), 2):
            keep = [s for s in shards if s.index not in lost]
            assert rs.decode(keep, 997) == data

    def test_too_many_erasures(self):
        rs = RSCode(4, 2)
        shards = rs.encode(payload(100))
        with pytest.raises(DecodingError):
            rs.decode(shards[:3], 100)

    def test_duplicate_shards_not_counted_twice(self):
        rs = RSCode(3, 1)
        shards = rs.encode(payload(99))
        with pytest.raises(DecodingError):
            rs.decode([shards[0], shards[0], shards[1]], 99)

    def test_bad_index_rejected(self):
        rs = RSCode(2, 1)
        with pytest.raises(DecodingError):
            rs.decode([Shard(index=9, data=np.zeros(4, np.uint8))], 8)

    def test_inconsistent_lengths_rejected(self):
        rs = RSCode(2, 1)
        shards = rs.encode(payload(100))
        bad = [shards[0], Shard(index=1, data=np.zeros(1, np.uint8))]
        with pytest.raises(DecodingError):
            rs.decode(bad, 100)

    def test_wrong_nbytes_rejected(self):
        rs = RSCode(2, 1)
        shards = rs.encode(payload(100))
        with pytest.raises(DecodingError):
            rs.decode(shards, 400)

    def test_parity_only_reconstruction(self):
        # Lose ALL data shards; decode purely from parity.
        rs = RSCode(2, 2)
        data = payload(256)
        shards = rs.encode(data)
        assert rs.decode(shards[2:], 256) == data


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.binary(min_size=1, max_size=512),
        st.integers(2, 6),
        st.integers(1, 3),
    )
    def test_roundtrip_random_erasures(self, data, k, m):
        rs = RSCode(k, m)
        shards = rs.encode(data)
        # Drop the first m shards (worst case for systematic codes).
        assert rs.decode(shards[m:], len(data)) == data

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=256))
    def test_overhead_bytes(self, data):
        rs = RSCode(4, 2)
        shards = rs.encode(data)
        total = sum(s.nbytes for s in shards)
        assert total == rs.shard_length(len(data)) * 6
