"""Tests for buddy replication across staging servers."""

import numpy as np
import pytest

from repro.corec.replication import ReplicationScheme
from repro.descriptors import ObjectDescriptor
from repro.errors import ConfigError, ObjectNotFound
from repro.geometry import BBox
from repro.staging import StagingServer


def servers(n=4):
    return [StagingServer(i) for i in range(n)]


def desc(version=0):
    return ObjectDescriptor("x", version, BBox((0,), (16,)))


class TestPlacement:
    def test_replica_servers_cyclic(self):
        rep = ReplicationScheme(n_replicas=3)
        assert rep.replica_servers(2, 4) == [2, 3, 0]

    def test_single_copy(self):
        rep = ReplicationScheme(n_replicas=1)
        assert rep.replica_servers(1, 4) == [1]

    def test_rejects_zero_replicas(self):
        with pytest.raises(ConfigError):
            ReplicationScheme(n_replicas=0)

    def test_rejects_more_replicas_than_servers(self):
        rep = ReplicationScheme(n_replicas=5)
        with pytest.raises(ConfigError):
            rep.replica_servers(0, 4)

    def test_overhead(self):
        assert ReplicationScheme(n_replicas=2).storage_overhead == 1.0
        assert ReplicationScheme(n_replicas=3).storage_overhead == 2.0

    def test_tolerates(self):
        rep = ReplicationScheme(n_replicas=2)
        assert rep.tolerates(1)
        assert not rep.tolerates(2)


class TestPutGet:
    def test_put_places_all_copies(self):
        srvs = servers()
        rep = ReplicationScheme(n_replicas=2)
        data = np.arange(16, dtype=np.float64)
        placed = rep.put(srvs, 1, desc(), data)
        assert placed == [1, 2]
        assert srvs[1].nbytes == srvs[2].nbytes == data.nbytes
        assert srvs[0].nbytes == 0

    def test_get_from_primary(self):
        srvs = servers()
        rep = ReplicationScheme(n_replicas=2)
        data = np.arange(16, dtype=np.float64)
        rep.put(srvs, 0, desc(), data)
        assert np.array_equal(rep.get(srvs, 0, desc()), data)

    def test_get_survives_primary_failure(self):
        srvs = servers()
        rep = ReplicationScheme(n_replicas=2)
        data = np.arange(16, dtype=np.float64)
        rep.put(srvs, 0, desc(), data)
        assert np.array_equal(rep.get(srvs, 0, desc(), failed={0}), data)

    def test_get_all_replicas_lost(self):
        srvs = servers()
        rep = ReplicationScheme(n_replicas=2)
        rep.put(srvs, 0, desc(), np.zeros(16))
        with pytest.raises(ObjectNotFound):
            rep.get(srvs, 0, desc(), failed={0, 1})

    def test_get_missing_data(self):
        srvs = servers()
        rep = ReplicationScheme(n_replicas=2)
        with pytest.raises(ObjectNotFound):
            rep.get(srvs, 0, desc())
