"""Tests for GF(2^8) arithmetic, including field-law property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corec.gf256 import GF256

byte = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestScalarOps:
    def test_add_is_xor(self):
        assert GF256.add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self):
        assert GF256.sub(7, 3) == GF256.add(7, 3)

    def test_mul_identity(self):
        a = np.arange(256, dtype=np.uint8)
        assert np.array_equal(GF256.mul(a, 1), a)

    def test_mul_zero(self):
        a = np.arange(256, dtype=np.uint8)
        assert np.all(GF256.mul(a, 0) == 0)

    def test_div_by_zero_scalar(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)

    def test_div_by_zero_array(self):
        with pytest.raises(ValueError):
            GF256.div(np.array([1, 2], np.uint8), np.array([1, 0], np.uint8))

    def test_inverse(self):
        a = np.arange(1, 256, dtype=np.uint8)
        assert np.all(GF256.mul(a, GF256.inv(a)) == 1)

    def test_pow(self):
        assert GF256.pow(2, 0) == 1
        assert GF256.pow(2, 1) == 2
        assert GF256.pow(0, 5) == 0
        assert GF256.pow(0, 0) == 1

    def test_pow_negative_zero_base(self):
        with pytest.raises(ZeroDivisionError):
            GF256.pow(0, -1)

    def test_generator_order(self):
        # 2 is primitive for 0x11d: its order is 255.
        seen = set()
        x = 1
        for _ in range(255):
            seen.add(x)
            x = int(GF256.mul(x, 2))
        assert len(seen) == 255


class TestFieldLaws:
    @settings(max_examples=200, deadline=None)
    @given(byte, byte, byte)
    def test_mul_associative(self, a, b, c):
        assert int(GF256.mul(GF256.mul(a, b), c)) == int(GF256.mul(a, GF256.mul(b, c)))

    @settings(max_examples=200, deadline=None)
    @given(byte, byte)
    def test_mul_commutative(self, a, b):
        assert int(GF256.mul(a, b)) == int(GF256.mul(b, a))

    @settings(max_examples=200, deadline=None)
    @given(byte, byte, byte)
    def test_distributive(self, a, b, c):
        left = int(GF256.mul(a, GF256.add(b, c)))
        right = int(GF256.add(GF256.mul(a, b), GF256.mul(a, c)))
        assert left == right

    @settings(max_examples=200, deadline=None)
    @given(byte, nonzero)
    def test_div_inverts_mul(self, a, b):
        assert int(GF256.div(GF256.mul(a, b), b)) == a


class TestMatrixOps:
    def test_matmul_identity(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 256, (5, 5), dtype=np.uint8)
        eye = np.eye(5, dtype=np.uint8)
        assert np.array_equal(GF256.matmul(m, eye), m)
        assert np.array_equal(GF256.matmul(eye, m), m)

    def test_matmul_shape_check(self):
        with pytest.raises(ValueError):
            GF256.matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))

    def test_mat_inverse_roundtrip(self):
        v = GF256.vandermonde(6, 4)
        sub = v[[0, 2, 3, 5], :]
        inv = GF256.mat_inverse(sub)
        assert np.array_equal(GF256.matmul(inv, sub), np.eye(4, dtype=np.uint8))

    def test_mat_inverse_singular(self):
        singular = np.zeros((3, 3), np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            GF256.mat_inverse(singular)

    def test_mat_inverse_shape_check(self):
        with pytest.raises(ValueError):
            GF256.mat_inverse(np.zeros((2, 3), np.uint8))

    def test_vandermonde_any_k_rows_invertible(self):
        import itertools

        v = GF256.vandermonde(6, 3)
        for rows in itertools.combinations(range(6), 3):
            inv = GF256.mat_inverse(v[list(rows), :])
            assert np.array_equal(
                GF256.matmul(inv, v[list(rows), :]), np.eye(3, dtype=np.uint8)
            )

    def test_vandermonde_row_limit(self):
        with pytest.raises(ValueError):
            GF256.vandermonde(256, 2)
