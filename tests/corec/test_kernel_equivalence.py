"""Property tests: the table-driven GF(256) kernels match the seed kernels.

The vectorised kernels (full 256x256 MUL table, row-LUT / 3-d-gather matmul,
batched RS encode) replaced slower reference implementations. These tests
pin them bit-for-bit to straightforward re-implementations of the originals:

* ``mul`` — exp/log lookup with explicit ``where()`` zero masks;
* ``matmul`` — Python loop over k accumulating outer products;
* ``vandermonde`` — scalar double loop over ``pow``;
* ``encode`` — single-payload matmul against the full generator matrix.

Zeros are the classic trap (log(0) is undefined; the table bakes the zero
row/column in), so the strategies bias heavily toward zero elements.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corec.gf256 import _ROWLUT_MIN_COLS, GF256
from repro.corec.reedsolomon import RSCode

# ----------------------------------------------------------- reference kernels


def ref_mul(a, b):
    """Seed element-wise product: exp/log with where() zero masks."""
    a = np.asarray(a, np.uint8)
    b = np.asarray(b, np.uint8)
    out = GF256.EXP[(GF256.LOG[a].astype(np.int64) + GF256.LOG[b])]
    return np.where((a == 0) | (b == 0), np.uint8(0), out)


def ref_matmul(a, b):
    """Seed matrix product: k-term accumulation of outer products."""
    a = np.asarray(a, np.uint8)
    b = np.asarray(b, np.uint8)
    m, k = a.shape
    out = np.zeros((m, b.shape[1]), dtype=np.uint8)
    for j in range(k):
        out ^= ref_mul(a[:, j : j + 1], b[j : j + 1, :])
    return out


def ref_vandermonde(rows, cols):
    """Seed Vandermonde: scalar double loop over pow."""
    out = np.empty((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = GF256.pow(i + 1, j)
    return out


def ref_encode(code, payload):
    """Seed RS encode: one full-matrix matmul per payload."""
    buf = np.ascontiguousarray(payload, dtype=np.uint8).reshape(-1)
    shard_len = code.shard_length(buf.size)
    padded = np.zeros(shard_len * code.k, dtype=np.uint8)
    padded[: buf.size] = buf
    return ref_matmul(code.matrix, padded.reshape(code.k, shard_len))


# Half the draws are zero so every zero-handling branch gets exercised.
elements = st.one_of(st.just(0), st.integers(0, 255))


def byte_matrix(rows, cols):
    return st.lists(
        st.lists(elements, min_size=cols, max_size=cols),
        min_size=rows,
        max_size=rows,
    ).map(lambda x: np.array(x, dtype=np.uint8))


# ------------------------------------------------------------------- mul/div


class TestMulTable:
    def test_mul_table_matches_reference_exhaustively(self):
        a = np.arange(256, dtype=np.uint8)
        grid_a = np.repeat(a, 256)
        grid_b = np.tile(a, 256)
        np.testing.assert_array_equal(GF256.mul(grid_a, grid_b), ref_mul(grid_a, grid_b))

    def test_div_table_matches_mul_inverse_exhaustively(self):
        a = np.arange(256, dtype=np.uint8)
        for b in range(1, 256):
            q = GF256.div(a, np.uint8(b))
            np.testing.assert_array_equal(GF256.mul(q, np.uint8(b)), a)

    @given(byte_matrix(3, 17), byte_matrix(3, 17))
    @settings(max_examples=50, deadline=None)
    def test_mul_elementwise_random(self, a, b):
        np.testing.assert_array_equal(GF256.mul(a, b), ref_mul(a, b))


# -------------------------------------------------------------------- matmul


class TestMatmulKernels:
    @given(
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(1, 24),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_small_gather_kernel_matches_reference(self, m, k, n, data):
        a = data.draw(byte_matrix(m, k))
        b = data.draw(byte_matrix(k, n))
        np.testing.assert_array_equal(GF256.matmul(a, b), ref_matmul(a, b))

    @given(st.integers(1, 4), st.integers(1, 5), st.data())
    @settings(max_examples=10, deadline=None)
    def test_rowlut_kernel_matches_reference(self, m, k, data):
        # Wide enough to cross the row-LUT dispatch threshold.
        n = _ROWLUT_MIN_COLS + data.draw(st.integers(0, 64))
        a = data.draw(byte_matrix(m, k))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        b = rng.integers(0, 256, size=(k, n), dtype=np.uint8)
        b[:, data.draw(st.integers(0, n - 1))] = 0  # a zero column too
        np.testing.assert_array_equal(GF256.matmul(a, b), ref_matmul(a, b))

    def test_both_kernels_agree_at_threshold(self):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 256, size=(5, 8), dtype=np.uint8)
        for n in (_ROWLUT_MIN_COLS - 1, _ROWLUT_MIN_COLS, _ROWLUT_MIN_COLS + 1):
            b = rng.integers(0, 256, size=(8, n), dtype=np.uint8)
            np.testing.assert_array_equal(GF256.matmul(a, b), ref_matmul(a, b))
            np.testing.assert_array_equal(
                GF256._matmul_rowlut(a, b), ref_matmul(a, b)
            )

    def test_all_zero_and_all_one_coefficients(self):
        # Exercises the coeff==0 skip and the coeff==1 no-multiply fast path.
        b = np.random.default_rng(3).integers(0, 256, size=(4, 2048), dtype=np.uint8)
        zeros = np.zeros((3, 4), dtype=np.uint8)
        ones = np.ones((3, 4), dtype=np.uint8)
        np.testing.assert_array_equal(GF256.matmul(zeros, b), ref_matmul(zeros, b))
        np.testing.assert_array_equal(GF256.matmul(ones, b), ref_matmul(ones, b))


class TestVandermonde:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (4, 4), (11, 8), (255, 5)])
    def test_matches_scalar_reference(self, rows, cols):
        np.testing.assert_array_equal(
            GF256.vandermonde(rows, cols), ref_vandermonde(rows, cols)
        )


# ------------------------------------------------------------------ RS encode


class TestBatchedEncode:
    @given(
        st.sampled_from([(2, 1), (4, 2), (8, 3)]),
        st.lists(st.integers(1, 2000), min_size=1, max_size=5),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_encode_batch_matches_reference_encode(self, km, sizes, seed):
        k, m = km
        code = RSCode(k, m)
        rng = np.random.default_rng(seed)
        payloads = [rng.integers(0, 256, size=s, dtype=np.uint8) for s in sizes]
        batch = code.encode_batch(payloads)
        assert len(batch) == len(payloads)
        for payload, shards in zip(payloads, batch):
            expect = ref_encode(code, payload)
            assert len(shards) == k + m
            for i, shard in enumerate(shards):
                assert shard.index == i
                np.testing.assert_array_equal(shard.data, expect[i])

    @given(st.integers(1, 4096), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_single_encode_equals_batch_of_one(self, size, seed):
        code = RSCode(4, 2)
        payload = np.random.default_rng(seed).integers(0, 256, size=size, dtype=np.uint8)
        single = code.encode(payload)
        [batched] = code.encode_batch([payload])
        for s, b in zip(single, batched):
            assert s.index == b.index
            np.testing.assert_array_equal(s.data, b.data)

    @given(
        st.sampled_from([(2, 1), (4, 2), (8, 3)]),
        st.integers(1, 3000),
        st.integers(0, 2**32 - 1),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_decode_with_all_data_shards_surviving(self, km, size, seed, data):
        # Systematic fast path: the k data shards alone must reconstruct.
        k, m = km
        code = RSCode(k, m)
        payload = np.random.default_rng(seed).integers(0, 256, size=size, dtype=np.uint8)
        shards = code.encode(payload)
        assert code.decode(shards[:k], size) == payload.tobytes()
        # And any k survivors (including parity) also reconstruct.
        idx = data.draw(st.permutations(range(k + m)))[:k]
        survivors = [shards[i] for i in sorted(idx)]
        assert code.decode(survivors, size) == payload.tobytes()

    def test_zero_payload_bytes_encode_to_zero_parity(self):
        code = RSCode(4, 2)
        shards = code.encode(np.zeros(64, dtype=np.uint8))
        for shard in shards:
            assert not shard.data.any()


# ------------------------------------------------------------------ RS decode


def ref_decode(code, shards, nbytes):
    """Seed RS decode: per-codeword inverse + reference matmul."""
    seen = {}
    for s in shards:
        seen.setdefault(s.index, s)
    use = sorted(seen.values(), key=lambda s: s.index)[: code.k]
    rows = [s.index for s in use]
    coded = np.stack([s.data for s in use])
    if rows == list(range(code.k)):
        data_matrix = coded
    else:
        inv = GF256.mat_inverse(code.matrix[rows, :])
        data_matrix = ref_matmul(inv, coded)
    return data_matrix.reshape(-1)[:nbytes].tobytes()


class TestBatchedDecode:
    @given(
        st.sampled_from([(2, 1), (4, 2), (8, 3)]),
        st.lists(st.integers(1, 2000), min_size=1, max_size=8),
        st.integers(0, 2**32 - 1),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_decode_batch_matches_reference_decode(self, km, sizes, seed, data):
        # Mixed erasure patterns in one batch: each codeword independently
        # loses up to m random shards, so the batch exercises the per-pattern
        # grouping (several inverses) and the systematic fast path together.
        k, m = km
        code = RSCode(k, m)
        rng = np.random.default_rng(seed)
        payloads = [rng.integers(0, 256, size=s, dtype=np.uint8) for s in sizes]
        batch = code.encode_batch(payloads)
        survivors = []
        for shards in batch:
            lost = data.draw(
                st.lists(
                    st.integers(0, k + m - 1), max_size=m, unique=True
                )
            )
            survivors.append([s for s in shards if s.index not in lost])
        decoded = code.decode_batch(survivors, sizes)
        for out, payload, cw in zip(decoded, payloads, survivors):
            assert out == payload.tobytes()
            assert out == ref_decode(code, cw, payload.size)

    @given(st.integers(1, 3000), st.integers(0, 2**32 - 1), st.data())
    @settings(max_examples=30, deadline=None)
    def test_single_decode_equals_batch_of_one(self, size, seed, data):
        code = RSCode(4, 2)
        payload = np.random.default_rng(seed).integers(0, 256, size=size, dtype=np.uint8)
        shards = code.encode(payload)
        idx = sorted(data.draw(st.permutations(range(6)))[:4])
        survivors = [shards[i] for i in idx]
        assert code.decode(survivors, size) == code.decode_batch([survivors], [size])[0]

    def test_duplicate_shards_are_deduplicated(self):
        code = RSCode(4, 2)
        payload = np.arange(100, dtype=np.uint8)
        shards = code.encode(payload)
        doubled = shards[1:] + shards[1:3]
        assert code.decode_batch([doubled], [100])[0] == payload.tobytes()

    def test_batch_validation_matches_scalar_errors(self):
        from repro.errors import DecodingError

        code = RSCode(4, 2)
        payload = np.arange(64, dtype=np.uint8)
        shards = code.encode(payload)
        with pytest.raises(DecodingError, match="only 3 distinct survive"):
            code.decode_batch([shards[:3]], [64])
        bad = shards[:3] + [type(shards[0])(index=9, data=shards[0].data)]
        with pytest.raises(DecodingError, match="index 9 out of range"):
            code.decode_batch([bad], [64])
        with pytest.raises(DecodingError, match="batch mismatch"):
            code.decode_batch([shards], [64, 64])
        with pytest.raises(DecodingError, match="inconsistent with payload"):
            code.decode_batch([shards[:4]], [200])

    def test_empty_batch(self):
        assert RSCode(4, 2).decode_batch([], []) == []
